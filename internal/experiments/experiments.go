// Package experiments regenerates every table and figure of the paper's
// evaluation: each Figure/Table function runs the required simulations
// and returns structured rows that cmd/figures renders and the benchmark
// harness asserts over.
//
// Shapes — who wins, by roughly what factor, where crossovers fall —
// are the reproduction target; absolute values differ from the paper's
// Scarab/trace setup (see EXPERIMENTS.md).
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"udpsim/internal/obs"
	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

// Options controls simulation effort; the defaults match cmd/figures.
type Options struct {
	// Instructions per simulated region (after warmup).
	Instructions uint64
	// Warmup instructions per region. Large-footprint learning
	// mechanisms (UDP) need multi-pass warmups.
	Warmup uint64
	// Simpoints per application.
	Simpoints int
	// Workloads restricts the evaluated applications (default: all 10).
	Workloads []string
	// Parallelism bounds how many simulations run concurrently
	// (<= 0 means GOMAXPROCS). Results are deterministic at any value:
	// jobs are collected in input-grid order and every machine is
	// seeded independently.
	Parallelism int
	// Progress, when non-nil, receives a line per completed run.
	// Invocations are serialized, but under parallelism the lines
	// arrive in completion order, not grid order.
	Progress func(string)

	// Batch groups grid cells that share a workload image (and simpoint
	// count) into lockstep batches: each group's architectural stream is
	// produced once per simpoint (sim.RunBatchSimpoints over a shared
	// workload tape) instead of once per cell. Results are bit-identical
	// to unbatched runs — the cache, the persistent store, and every
	// figure see the exact same values — so this is purely a speed knob.
	Batch bool

	// Context, when non-nil, cancels in-flight and pending simulations:
	// running machines stop within a few thousand simulated cycles,
	// queued grid cells are skipped, and the aggregated error contains
	// ctx.Err(). Nil means context.Background() (uncancellable, the
	// zero-overhead path).
	Context context.Context

	// Interval, when non-zero together with Metrics, enables per-
	// interval time-series sampling (cycles per sample) for every
	// simulated region. Sampling does not change the simulated machine
	// or the result-cache key, so cached cells simply emit no samples —
	// samples come only from the cells actually simulated in this
	// process.
	Interval uint64
	// Metrics receives streamed interval samples when non-nil
	// (obs.MetricsWriter serializes concurrent regions).
	Metrics *obs.MetricsWriter
	// OnSample, when non-nil together with Interval, additionally
	// receives every interval sample as a typed callback — the hook the
	// daemon's SSE stream hangs off. Callbacks arrive from concurrently
	// simulating regions and must be safe for concurrent use.
	OnSample func(obs.IntervalSample)

	// Store, when non-nil, is the persistent result store this run reads
	// through and writes back to, overriding the process-global one
	// installed with SetResultStore. The daemon passes its own store (or
	// its cluster peer-transport) here so several in-process server
	// instances — a test fleet, a coordinator plus workers — keep
	// distinct stores despite sharing the process.
	Store ResultStore

	// OnSpan, when non-nil, receives wall-clock lifecycle spans for the
	// cells this Options actually executes: store-read/store-write
	// around the persistent store, and warmup/measure per simulated
	// region. The daemon stamps each span with the owning job's trace ID
	// before recording, so a submission's whole engine journey lands on
	// one Perfetto timeline. Cached cells emit only the store-read probe
	// (there is nothing else to time). Callbacks arrive from
	// concurrently simulating regions and must be safe for concurrent
	// use.
	OnSpan func(obs.Span)
}

// DefaultOptions returns the evaluation configuration used by
// cmd/figures: regions are long enough for UDP's useful-set to converge
// on the multi-MB footprints.
func DefaultOptions() Options {
	return Options{
		Instructions: 500_000,
		Warmup:       2_000_000,
		Simpoints:    1,
	}
}

// QuickOptions returns a configuration for fast smoke runs (unit tests,
// -short benchmarks).
func QuickOptions() Options {
	return Options{
		Instructions: 120_000,
		Warmup:       150_000,
		Simpoints:    1,
	}
}

// simpoints normalizes the simpoint count the way CacheKey and the
// simpoint runners do (zero means one region).
func (o Options) simpoints() int {
	if o.Simpoints <= 0 {
		return 1
	}
	return o.Simpoints
}

func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workload.Names
}

// progressMu serializes Progress callbacks: under the parallel engine
// several workers complete at once, and fanned-in lines must not
// interleave mid-callback.
var progressMu sync.Mutex

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		progressMu.Lock()
		defer progressMu.Unlock()
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// ctx resolves the option's context (nil means Background).
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// attach returns the per-region observer attach callback implementing
// Options.Interval/Metrics/OnSample streaming, or nil when sampling is
// disabled (the plain, zero-overhead path).
func (o Options) attach() func(int, *sim.Machine) {
	if o.Interval == 0 || (o.Metrics == nil && o.OnSample == nil) {
		return nil
	}
	w := o.Metrics
	cb := o.OnSample
	iv := o.Interval
	return func(region int, m *sim.Machine) {
		m.AttachObserver(&obs.Observer{
			Interval: iv,
			OnSample: func(s obs.IntervalSample) {
				if w != nil {
					_ = w.Write(s)
				}
				if cb != nil {
					cb(s)
				}
			},
		})
	}
}

// attachCell wraps attach() with the per-machine run-phase hook when
// span emission is on: warmup and measure become spans (tagged with
// workload/mechanism/region), and the measure phase feeds the
// per-mechanism run-duration histogram. The hook fires O(1) times per
// run, so the zero-alloc cycle-loop invariant is untouched.
func (o Options) attachCell(name string, mech sim.Mechanism) func(int, *sim.Machine) {
	obsAttach := o.attach()
	onSpan := o.OnSpan
	if onSpan == nil {
		return obsAttach
	}
	return func(region int, m *sim.Machine) {
		if obsAttach != nil {
			obsAttach(region, m)
		}
		// Per-machine closure state: one machine's transitions are
		// sequential even under the parallel batch scheduler, so no lock.
		var phase string
		var phaseStart time.Time
		m.SetPhaseHook(func(p string) {
			now := time.Now()
			if phase == "warmup" || phase == "measure" {
				onSpan(obs.Span{
					Name:  phase,
					Start: phaseStart,
					End:   now,
					Args: map[string]any{
						"workload":  name,
						"mechanism": string(mech),
						"region":    region,
					},
				})
				if phase == "measure" {
					obs.RunDurationUS.Observe(obs.SinceUS(phaseStart), string(mech))
				}
			}
			phase, phaseStart = p, now
		})
	}
}

// spanStore reports whether this Options should emit store spans: a
// span callback is installed and a persistent store actually exists
// (no store → no I/O to time, and a no-op span per cell would be pure
// timeline noise).
func (o Options) spanStore() bool {
	return o.OnSpan != nil && o.store() != nil
}

// run executes one configuration over the option's simpoints, memoized
// process-wide and singleflighted: concurrent callers with the same
// canonical config key block on the first runner instead of simulating
// the same deterministic region twice. When a persistent ResultStore is
// installed (SetResultStore) the cache reads through it: an in-memory
// miss probes the store before simulating, and completed simulations
// are written back — so a daemon restart serves known configurations
// from disk.
func (o Options) run(name string, mech sim.Mechanism, mutate func(*sim.Config)) (sim.Result, error) {
	cfg := o.cellConfig(name, mech, mutate)
	return o.runConfig(name, mech, cfg)
}

// cellConfig builds the simulated configuration for one grid cell. A
// "trace:<name>" cell resolves through the source registry (the trace
// must already be loaded and registered — cmd mains and ResolveTraces
// do that before any grid runs).
func (o Options) cellConfig(name string, mech sim.Mechanism, mutate func(*sim.Config)) sim.Config {
	var cfg sim.Config
	if tn, ok := strings.CutPrefix(name, "trace:"); ok {
		src, ok := workload.SourceByName(tn)
		if !ok {
			panic("experiments: trace workload " + tn + " not registered")
		}
		cfg = sim.NewTraceConfig(tn, strings.TrimPrefix(src.Key(), "trace:"), mech)
	} else {
		cfg = sim.NewConfig(workload.MustByName(name), mech)
	}
	cfg.MaxInstructions = o.Instructions
	cfg.WarmupInstructions = o.Warmup
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

func (o Options) runConfig(name string, mech sim.Mechanism, cfg sim.Config) (sim.Result, error) {
	key := CacheKey(cfg, o.Simpoints)
	ctx := o.ctx()

	resultMu.Lock()
	if cached, ok := resultCache[key]; ok {
		resultMu.Unlock()
		obs.CacheHits.Add(1)
		o.progress("%s/%s ftq=%d: IPC %.4f (cached)", name, mech, cached.FinalFTQDepth, cached.IPC)
		return cached, nil
	}
	if call, ok := resultInflight[key]; ok {
		// Another goroutine is already simulating this key: wait for
		// it. The runner necessarily holds a worker slot already, so
		// waiting here cannot deadlock the pool. A canceled waiter
		// abandons the wait (the runner itself is driven by its own
		// submitter's context and finishes or cancels independently).
		resultMu.Unlock()
		obs.CacheInflightWaits.Add(1)
		select {
		case <-call.done:
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
		if call.err != nil {
			return sim.Result{}, call.err
		}
		o.progress("%s/%s ftq=%d: IPC %.4f (cached)", name, mech, call.res.FinalFTQDepth, call.res.IPC)
		return call.res, nil
	}
	call := &resultCall{done: make(chan struct{})}
	resultInflight[key] = call
	resultMu.Unlock()

	// In-memory miss: read through the persistent store before paying
	// for a simulation. A hit is published exactly like a computed
	// result so concurrent waiters resolve.
	spanStore := o.spanStore()
	readStart := time.Now()
	agg, hit := o.storeLoad(key)
	if spanStore {
		o.OnSpan(obs.Span{Name: "store-read", Start: readStart, End: time.Now(),
			Args: map[string]any{"key": key, "hit": hit}})
	}
	var err error
	if !hit {
		obs.CacheMisses.Add(1)
		_, agg, err = sim.RunSimpointsCtx(ctx, cfg, o.Simpoints, 1, o.attachCell(name, mech))
		if err == nil {
			writeStart := time.Now()
			o.storeSave(key, agg)
			if spanStore {
				o.OnSpan(obs.Span{Name: "store-write", Start: writeStart, End: time.Now(),
					Args: map[string]any{"key": key}})
			}
		}
	}

	resultMu.Lock()
	if err == nil {
		resultCache[key] = agg
	}
	call.res, call.err = agg, err
	delete(resultInflight, key)
	resultMu.Unlock()
	close(call.done)

	if err != nil {
		return sim.Result{}, err
	}
	if hit {
		o.progress("%s/%s ftq=%d: IPC %.4f (store)", name, mech, agg.FinalFTQDepth, agg.IPC)
	} else {
		o.progress("%s/%s ftq=%d: IPC %.4f", name, mech, agg.FinalFTQDepth, agg.IPC)
	}
	return agg, nil
}

// SpeedupRow is one bar of a speedup figure.
type SpeedupRow struct {
	App string
	// Speedups maps series name to fractional IPC speedup over the
	// app's baseline.
	Speedups map[string]float64
}

// SweepSeries is one application's line across a parameter sweep.
type SweepSeries struct {
	App    string
	X      []int     // parameter values (FTQ depth, BTB entries)
	Values []float64 // metric at each X
}

// FTQDepths is the sweep grid used for Figs. 3-6 and 8.
var FTQDepths = []int{8, 12, 16, 24, 32, 48, 64, 96, 128}

// sweepMetric runs the FTQ sweep collecting one metric per depth. The
// whole apps × depths grid is submitted to the worker pool at once;
// series are assembled in input-grid order.
func (o Options) sweepMetric(metric func(sim.Result) float64) ([]SweepSeries, error) {
	apps := o.workloads()
	var jobs []jobSpec
	for _, app := range apps {
		for _, d := range FTQDepths {
			depth := d
			jobs = append(jobs, jobSpec{
				app:    app,
				mech:   sim.MechBaseline,
				mutate: func(c *sim.Config) { c.FTQDepth = depth },
			})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	var out []SweepSeries
	for ai, app := range apps {
		s := SweepSeries{App: app, X: FTQDepths}
		for di := range FTQDepths {
			s.Values = append(s.Values, metric(results[ai*len(FTQDepths)+di]))
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure1 measures the IPC speedup of a perfect icache over the FDIP-32
// baseline for each application.
func Figure1(o Options) ([]SpeedupRow, error) {
	apps := o.workloads()
	mechs := []sim.Mechanism{sim.MechBaseline, sim.MechPerfectICache, sim.MechNoPrefetch}
	var jobs []jobSpec
	for _, app := range apps {
		for _, m := range mechs {
			jobs = append(jobs, jobSpec{app: app, mech: m})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	var rows []SpeedupRow
	for ai, app := range apps {
		base := results[ai*len(mechs)]
		rows = append(rows, SpeedupRow{App: app, Speedups: map[string]float64{
			"perfect-icache": results[ai*len(mechs)+1].Speedup(base),
			"no-prefetch":    results[ai*len(mechs)+2].Speedup(base),
		}})
	}
	return rows, nil
}

// Figure3 sweeps FTQ depth and reports the IPC speedup over depth 32
// per application, plus the per-app optimum.
func Figure3(o Options) ([]SweepSeries, map[string]int, error) {
	series, err := o.sweepMetric(func(r sim.Result) float64 { return r.IPC })
	if err != nil {
		return nil, nil, err
	}
	// Locate optima on the raw IPCs, then normalize to depth 32.
	optima := make(map[string]int)
	for i := range series {
		s := &series[i]
		bestIdx := 0
		for j, v := range s.Values {
			if v > s.Values[bestIdx] {
				bestIdx = j
			}
		}
		optima[s.App] = s.X[bestIdx]
	}
	if err := normalizeSweep(series, 32); err != nil {
		return nil, nil, err
	}
	return series, optima, nil
}

// normalizeSweep rewrites every series value into a fractional speedup
// over the series value at x = baseX. A missing or non-positive
// baseline is an error: silently leaving a series as raw IPCs would
// mix absolute and relative values across apps (the old fall-through
// bug).
func normalizeSweep(series []SweepSeries, baseX int) error {
	for i := range series {
		s := &series[i]
		base := valueAt(s, baseX)
		if base <= 0 {
			return fmt.Errorf("experiments: %s has no positive baseline at x=%d (got %g); cannot normalize",
				s.App, baseX, base)
		}
		for j, v := range s.Values {
			s.Values[j] = v/base - 1
		}
	}
	return nil
}

// Figure4 reports the timeliness ratio across FTQ depths.
func Figure4(o Options) ([]SweepSeries, error) {
	return o.sweepMetric(func(r sim.Result) float64 { return r.Timeliness })
}

// Figure5 reports the on-path prefetch ratio across FTQ depths.
func Figure5(o Options) ([]SweepSeries, error) {
	return o.sweepMetric(func(r sim.Result) float64 { return r.OnPathRatio })
}

// Figure6 reports prefetch usefulness across FTQ depths.
func Figure6(o Options) ([]SweepSeries, error) {
	return o.sweepMetric(func(r sim.Result) float64 { return r.Usefulness })
}

// Figure8 reports mean FTQ occupancy across FTQ depths.
func Figure8(o Options) ([]SweepSeries, error) {
	return o.sweepMetric(func(r sim.Result) float64 { return r.MeanFTQOcc })
}

// Table3Row is one application's line of Table III.
type Table3Row struct {
	App        string
	OptimalFTQ int
	Utility    float64 // usefulness at FTQ=32
	Timeliness float64 // timeliness at FTQ=32
}

// Table3 reproduces the optimal-FTQ/utility/timeliness table, including
// the correlation coefficients between optimal depth and each ratio.
func Table3(o Options) ([]Table3Row, float64, float64, error) {
	_, optima, err := Figure3(o)
	if err != nil {
		return nil, 0, 0, err
	}
	apps := o.workloads()
	jobs := make([]jobSpec, len(apps))
	for i, app := range apps {
		jobs[i] = jobSpec{app: app, mech: sim.MechBaseline}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, 0, 0, err
	}
	var rows []Table3Row
	for i, app := range apps {
		rows = append(rows, Table3Row{
			App:        app,
			OptimalFTQ: optima[app],
			Utility:    results[i].Usefulness,
			Timeliness: results[i].Timeliness,
		})
	}
	var fs, us, ts []float64
	for _, r := range rows {
		fs = append(fs, float64(r.OptimalFTQ))
		us = append(us, r.Utility)
		ts = append(ts, r.Timeliness)
	}
	return rows, Correlation(fs, us), Correlation(fs, ts), nil
}

// UFTQSeries are the mechanisms of Fig. 11/12.
var UFTQSeries = []sim.Mechanism{sim.MechUFTQAUR, sim.MechUFTQATR, sim.MechUFTQATRAUR}

// Figure11 compares the UFTQ variants and the OPT oracle (per-app best
// fixed depth from the Fig. 3 sweep) against the FDIP-32 baseline.
func Figure11(o Options) ([]SpeedupRow, map[string]int, error) {
	_, optima, err := Figure3(o)
	if err != nil {
		return nil, nil, err
	}
	apps := o.workloads()
	stride := len(UFTQSeries) + 2 // baseline, UFTQ variants, OPT
	var jobs []jobSpec
	for _, app := range apps {
		jobs = append(jobs, jobSpec{app: app, mech: sim.MechBaseline})
		for _, mech := range UFTQSeries {
			jobs = append(jobs, jobSpec{app: app, mech: mech})
		}
		opt := optima[app]
		jobs = append(jobs, jobSpec{app: app, mech: sim.MechBaseline,
			mutate: func(c *sim.Config) { c.FTQDepth = opt }})
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, nil, err
	}
	var rows []SpeedupRow
	for ai, app := range apps {
		base := results[ai*stride]
		row := SpeedupRow{App: app, Speedups: map[string]float64{}}
		for mi, mech := range UFTQSeries {
			row.Speedups[string(mech)] = results[ai*stride+1+mi].Speedup(base)
		}
		row.Speedups["opt"] = results[ai*stride+stride-1].Speedup(base)
		rows = append(rows, row)
	}
	return rows, optima, nil
}

// MPKIRow is one application's icache MPKI under several mechanisms.
type MPKIRow struct {
	App  string
	MPKI map[string]float64
}

// Figure12 reports icache MPKI for baseline, the UFTQ variants, and OPT.
func Figure12(o Options) ([]MPKIRow, error) {
	_, optima, err := Figure3(o)
	if err != nil {
		return nil, err
	}
	apps := o.workloads()
	stride := len(UFTQSeries) + 2
	var jobs []jobSpec
	for _, app := range apps {
		jobs = append(jobs, jobSpec{app: app, mech: sim.MechBaseline})
		for _, mech := range UFTQSeries {
			jobs = append(jobs, jobSpec{app: app, mech: mech})
		}
		opt := optima[app]
		jobs = append(jobs, jobSpec{app: app, mech: sim.MechBaseline,
			mutate: func(c *sim.Config) { c.FTQDepth = opt }})
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	var rows []MPKIRow
	for ai, app := range apps {
		row := MPKIRow{App: app, MPKI: map[string]float64{}}
		row.MPKI["baseline"] = results[ai*stride].IcacheMPKI
		for mi, mech := range UFTQSeries {
			row.MPKI[string(mech)] = results[ai*stride+1+mi].IcacheMPKI
		}
		row.MPKI["opt"] = results[ai*stride+stride-1].IcacheMPKI
		rows = append(rows, row)
	}
	return rows, nil
}

// UDPSeries are the mechanisms of Fig. 13-15 (besides the baseline):
// UDP with the 8KB Bloom useful-set, the infinite-storage upper bound,
// the EIP 8KB comparator, and the ISO-storage 40KiB icache.
var UDPSeries = []string{"udp", "udp-infinite", "eip", "icache-40k"}

// Figure13 compares UDP, Infinite Storage, EIP-8KB and a 40K icache
// against the FDIP-32 baseline.
func Figure13(o Options) ([]SpeedupRow, error) {
	results, err := o.runUDPGrid()
	if err != nil {
		return nil, err
	}
	stride := len(UDPSeries) + 1
	var rows []SpeedupRow
	for ai, app := range o.workloads() {
		base := results[ai*stride]
		row := SpeedupRow{App: app, Speedups: map[string]float64{}}
		for si, series := range UDPSeries {
			row.Speedups[series] = results[ai*stride+1+si].Speedup(base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runUDPGrid submits the full apps × (baseline + UDPSeries) grid shared
// by Figs. 13-15; results are in grid order with stride
// len(UDPSeries)+1 per app (baseline first).
func (o Options) runUDPGrid() ([]sim.Result, error) {
	var jobs []jobSpec
	for _, app := range o.workloads() {
		jobs = append(jobs, jobSpec{app: app, mech: sim.MechBaseline})
		for _, series := range UDPSeries {
			j, err := udpSeriesJob(app, series)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
	}
	return o.runAll(jobs)
}

// udpSeriesJob maps a Fig. 13-15 series name to its job.
func udpSeriesJob(app, series string) (jobSpec, error) {
	switch series {
	case "udp":
		return jobSpec{app: app, mech: sim.MechUDP}, nil
	case "udp-infinite":
		return jobSpec{app: app, mech: sim.MechUDPInfinite}, nil
	case "eip":
		return jobSpec{app: app, mech: sim.MechEIP}, nil
	case "icache-40k":
		return jobSpec{app: app, mech: sim.MechBaseline, mutate: func(c *sim.Config) {
			c.ICacheBytes = 40 * 1024
			c.ICacheWays = sim.AutoWays(40 * 1024)
		}}, nil
	default:
		return jobSpec{}, fmt.Errorf("experiments: unknown UDP series %q", series)
	}
}

func (o Options) runUDPSeries(app, series string) (sim.Result, error) {
	j, err := udpSeriesJob(app, series)
	if err != nil {
		return sim.Result{}, err
	}
	return o.run(j.app, j.mech, j.mutate)
}

// Figure14 reports icache MPKI for the baseline and the Fig. 13 series.
func Figure14(o Options) ([]MPKIRow, error) {
	results, err := o.runUDPGrid()
	if err != nil {
		return nil, err
	}
	stride := len(UDPSeries) + 1
	var rows []MPKIRow
	for ai, app := range o.workloads() {
		row := MPKIRow{App: app, MPKI: map[string]float64{}}
		row.MPKI["baseline"] = results[ai*stride].IcacheMPKI
		for si, series := range UDPSeries {
			row.MPKI[series] = results[ai*stride+1+si].IcacheMPKI
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LostRow is one application's instructions-lost-to-icache-miss count
// (per kilo-instruction) under several mechanisms.
type LostRow struct {
	App  string
	Lost map[string]float64
}

// Figure15 reports instructions lost to icache-miss fetch stalls.
func Figure15(o Options) ([]LostRow, error) {
	results, err := o.runUDPGrid()
	if err != nil {
		return nil, err
	}
	stride := len(UDPSeries) + 1
	var rows []LostRow
	for ai, app := range o.workloads() {
		row := LostRow{App: app, Lost: map[string]float64{}}
		row.Lost["baseline"] = results[ai*stride].LostInstrsPKI
		for si, series := range UDPSeries {
			row.Lost[series] = results[ai*stride+1+si].LostInstrsPKI
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BTBSizes is the Fig. 16 sensitivity grid.
var BTBSizes = []int{1024, 2048, 4096, 8192, 16384}

// Figure16 reports UDP's speedup over the baseline at each BTB size.
func Figure16(o Options) ([]SweepSeries, error) {
	return o.pairedSweep(BTBSizes, func(c *sim.Config, v int) { c.BTBEntries = v })
}

// pairedSweep runs (baseline, udp) pairs across a parameter grid for
// every app and returns UDP's speedup series in grid order.
func (o Options) pairedSweep(grid []int, apply func(*sim.Config, int)) ([]SweepSeries, error) {
	apps := o.workloads()
	var jobs []jobSpec
	for _, app := range apps {
		for _, v := range grid {
			v := v
			jobs = append(jobs, jobSpec{app: app, mech: sim.MechBaseline,
				mutate: func(c *sim.Config) { apply(c, v) }})
			jobs = append(jobs, jobSpec{app: app, mech: sim.MechUDP,
				mutate: func(c *sim.Config) { apply(c, v) }})
		}
	}
	results, err := o.runAll(jobs)
	if err != nil {
		return nil, err
	}
	var out []SweepSeries
	for ai, app := range apps {
		s := SweepSeries{App: app, X: grid}
		for vi := range grid {
			base := results[(ai*len(grid)+vi)*2]
			udp := results[(ai*len(grid)+vi)*2+1]
			s.Values = append(s.Values, udp.Speedup(base))
		}
		out = append(out, s)
	}
	return out, nil
}

// UDPFTQSizes is the Fig. 17 sensitivity grid.
var UDPFTQSizes = []int{16, 32, 64, 128}

// Figure17 reports UDP's speedup over a same-depth baseline at each FTQ
// size.
func Figure17(o Options) ([]SweepSeries, error) {
	return o.pairedSweep(UDPFTQSizes, func(c *sim.Config, v int) { c.FTQDepth = v })
}

// valueAt returns the series value at parameter x (0 if absent).
func valueAt(s *SweepSeries, x int) float64 {
	for i, v := range s.X {
		if v == x {
			return s.Values[i]
		}
	}
	return 0
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length samples.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (sqrt(sxx) * sqrt(syy))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// SortedSeriesNames returns the map keys of a speedup row in stable
// order for rendering.
func SortedSeriesNames(rows []SpeedupRow) []string {
	seen := map[string]bool{}
	var names []string
	for _, r := range rows {
		for k := range r.Speedups {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	return names
}
