// Package experiments regenerates every table and figure of the paper's
// evaluation: each Figure/Table function runs the required simulations
// and returns structured rows that cmd/figures renders and the benchmark
// harness asserts over.
//
// Shapes — who wins, by roughly what factor, where crossovers fall —
// are the reproduction target; absolute values differ from the paper's
// Scarab/trace setup (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

// Options controls simulation effort; the defaults match cmd/figures.
type Options struct {
	// Instructions per simulated region (after warmup).
	Instructions uint64
	// Warmup instructions per region. Large-footprint learning
	// mechanisms (UDP) need multi-pass warmups.
	Warmup uint64
	// Simpoints per application.
	Simpoints int
	// Workloads restricts the evaluated applications (default: all 10).
	Workloads []string
	// Progress, when non-nil, receives a line per completed run.
	Progress func(string)
}

// DefaultOptions returns the evaluation configuration used by
// cmd/figures: regions are long enough for UDP's useful-set to converge
// on the multi-MB footprints.
func DefaultOptions() Options {
	return Options{
		Instructions: 500_000,
		Warmup:       2_000_000,
		Simpoints:    1,
	}
}

// QuickOptions returns a configuration for fast smoke runs (unit tests,
// -short benchmarks).
func QuickOptions() Options {
	return Options{
		Instructions: 120_000,
		Warmup:       150_000,
		Simpoints:    1,
	}
}

func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workload.Names
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// resultCache memoizes completed runs process-wide: several figures
// share configurations (every speedup figure needs the same baselines,
// Fig. 11/12 and Table III all need the Fig. 3 sweep), and simulations
// are deterministic, so recomputing them is pure waste.
var (
	resultMu    sync.Mutex
	resultCache = map[string]sim.Result{}
)

// run executes one configuration over the option's simpoints.
func (o Options) run(name string, mech sim.Mechanism, mutate func(*sim.Config)) (sim.Result, error) {
	prof := workload.MustByName(name)
	cfg := sim.NewConfig(prof, mech)
	cfg.MaxInstructions = o.Instructions
	cfg.WarmupInstructions = o.Warmup
	if mutate != nil {
		mutate(&cfg)
	}
	key := fmt.Sprintf("%+v|%d", cfg, o.Simpoints)
	resultMu.Lock()
	cached, ok := resultCache[key]
	resultMu.Unlock()
	if ok {
		return cached, nil
	}
	_, agg, err := sim.RunSimpoints(cfg, o.Simpoints)
	if err != nil {
		return sim.Result{}, err
	}
	resultMu.Lock()
	resultCache[key] = agg
	resultMu.Unlock()
	o.progress("%s/%s ftq=%d: IPC %.4f", name, mech, agg.FinalFTQDepth, agg.IPC)
	return agg, nil
}

// SpeedupRow is one bar of a speedup figure.
type SpeedupRow struct {
	App string
	// Speedups maps series name to fractional IPC speedup over the
	// app's baseline.
	Speedups map[string]float64
}

// SweepSeries is one application's line across a parameter sweep.
type SweepSeries struct {
	App    string
	X      []int     // parameter values (FTQ depth, BTB entries)
	Values []float64 // metric at each X
}

// FTQDepths is the sweep grid used for Figs. 3-6 and 8.
var FTQDepths = []int{8, 12, 16, 24, 32, 48, 64, 96, 128}

// sweepMetric runs the FTQ sweep collecting one metric per depth.
func (o Options) sweepMetric(metric func(sim.Result) float64) ([]SweepSeries, error) {
	var out []SweepSeries
	for _, app := range o.workloads() {
		s := SweepSeries{App: app, X: FTQDepths}
		for _, d := range FTQDepths {
			depth := d
			r, err := o.run(app, sim.MechBaseline, func(c *sim.Config) { c.FTQDepth = depth })
			if err != nil {
				return nil, err
			}
			s.Values = append(s.Values, metric(r))
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure1 measures the IPC speedup of a perfect icache over the FDIP-32
// baseline for each application.
func Figure1(o Options) ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for _, app := range o.workloads() {
		base, err := o.run(app, sim.MechBaseline, nil)
		if err != nil {
			return nil, err
		}
		perfect, err := o.run(app, sim.MechPerfectICache, nil)
		if err != nil {
			return nil, err
		}
		nopf, err := o.run(app, sim.MechNoPrefetch, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SpeedupRow{App: app, Speedups: map[string]float64{
			"perfect-icache": perfect.Speedup(base),
			"no-prefetch":    nopf.Speedup(base),
		}})
	}
	return rows, nil
}

// Figure3 sweeps FTQ depth and reports the IPC speedup over depth 32
// per application, plus the per-app optimum.
func Figure3(o Options) ([]SweepSeries, map[string]int, error) {
	series, err := o.sweepMetric(func(r sim.Result) float64 { return r.IPC })
	if err != nil {
		return nil, nil, err
	}
	// Locate optima on the raw IPCs, then normalize to depth 32.
	optima := make(map[string]int)
	for i := range series {
		s := &series[i]
		bestIdx := 0
		for j, v := range s.Values {
			if v > s.Values[bestIdx] {
				bestIdx = j
			}
		}
		optima[s.App] = s.X[bestIdx]
		base := valueAt(s, 32)
		if base > 0 {
			for j, v := range s.Values {
				s.Values[j] = v/base - 1
			}
		}
	}
	return series, optima, nil
}

// Figure4 reports the timeliness ratio across FTQ depths.
func Figure4(o Options) ([]SweepSeries, error) {
	return o.sweepMetric(func(r sim.Result) float64 { return r.Timeliness })
}

// Figure5 reports the on-path prefetch ratio across FTQ depths.
func Figure5(o Options) ([]SweepSeries, error) {
	return o.sweepMetric(func(r sim.Result) float64 { return r.OnPathRatio })
}

// Figure6 reports prefetch usefulness across FTQ depths.
func Figure6(o Options) ([]SweepSeries, error) {
	return o.sweepMetric(func(r sim.Result) float64 { return r.Usefulness })
}

// Figure8 reports mean FTQ occupancy across FTQ depths.
func Figure8(o Options) ([]SweepSeries, error) {
	return o.sweepMetric(func(r sim.Result) float64 { return r.MeanFTQOcc })
}

// Table3Row is one application's line of Table III.
type Table3Row struct {
	App        string
	OptimalFTQ int
	Utility    float64 // usefulness at FTQ=32
	Timeliness float64 // timeliness at FTQ=32
}

// Table3 reproduces the optimal-FTQ/utility/timeliness table, including
// the correlation coefficients between optimal depth and each ratio.
func Table3(o Options) ([]Table3Row, float64, float64, error) {
	_, optima, err := Figure3(o)
	if err != nil {
		return nil, 0, 0, err
	}
	var rows []Table3Row
	for _, app := range o.workloads() {
		r, err := o.run(app, sim.MechBaseline, nil)
		if err != nil {
			return nil, 0, 0, err
		}
		rows = append(rows, Table3Row{
			App:        app,
			OptimalFTQ: optima[app],
			Utility:    r.Usefulness,
			Timeliness: r.Timeliness,
		})
	}
	var fs, us, ts []float64
	for _, r := range rows {
		fs = append(fs, float64(r.OptimalFTQ))
		us = append(us, r.Utility)
		ts = append(ts, r.Timeliness)
	}
	return rows, Correlation(fs, us), Correlation(fs, ts), nil
}

// UFTQSeries are the mechanisms of Fig. 11/12.
var UFTQSeries = []sim.Mechanism{sim.MechUFTQAUR, sim.MechUFTQATR, sim.MechUFTQATRAUR}

// Figure11 compares the UFTQ variants and the OPT oracle (per-app best
// fixed depth from the Fig. 3 sweep) against the FDIP-32 baseline.
func Figure11(o Options) ([]SpeedupRow, map[string]int, error) {
	_, optima, err := Figure3(o)
	if err != nil {
		return nil, nil, err
	}
	var rows []SpeedupRow
	for _, app := range o.workloads() {
		base, err := o.run(app, sim.MechBaseline, nil)
		if err != nil {
			return nil, nil, err
		}
		row := SpeedupRow{App: app, Speedups: map[string]float64{}}
		for _, mech := range UFTQSeries {
			r, err := o.run(app, mech, nil)
			if err != nil {
				return nil, nil, err
			}
			row.Speedups[string(mech)] = r.Speedup(base)
		}
		opt := optima[app]
		r, err := o.run(app, sim.MechBaseline, func(c *sim.Config) { c.FTQDepth = opt })
		if err != nil {
			return nil, nil, err
		}
		row.Speedups["opt"] = r.Speedup(base)
		rows = append(rows, row)
	}
	return rows, optima, nil
}

// MPKIRow is one application's icache MPKI under several mechanisms.
type MPKIRow struct {
	App  string
	MPKI map[string]float64
}

// Figure12 reports icache MPKI for baseline, the UFTQ variants, and OPT.
func Figure12(o Options) ([]MPKIRow, error) {
	_, optima, err := Figure3(o)
	if err != nil {
		return nil, err
	}
	var rows []MPKIRow
	for _, app := range o.workloads() {
		row := MPKIRow{App: app, MPKI: map[string]float64{}}
		base, err := o.run(app, sim.MechBaseline, nil)
		if err != nil {
			return nil, err
		}
		row.MPKI["baseline"] = base.IcacheMPKI
		for _, mech := range UFTQSeries {
			r, err := o.run(app, mech, nil)
			if err != nil {
				return nil, err
			}
			row.MPKI[string(mech)] = r.IcacheMPKI
		}
		opt := optima[app]
		r, err := o.run(app, sim.MechBaseline, func(c *sim.Config) { c.FTQDepth = opt })
		if err != nil {
			return nil, err
		}
		row.MPKI["opt"] = r.IcacheMPKI
		rows = append(rows, row)
	}
	return rows, nil
}

// UDPSeries are the mechanisms of Fig. 13-15 (besides the baseline):
// UDP with the 8KB Bloom useful-set, the infinite-storage upper bound,
// the EIP 8KB comparator, and the ISO-storage 40KiB icache.
var UDPSeries = []string{"udp", "udp-infinite", "eip", "icache-40k"}

// Figure13 compares UDP, Infinite Storage, EIP-8KB and a 40K icache
// against the FDIP-32 baseline.
func Figure13(o Options) ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for _, app := range o.workloads() {
		base, err := o.run(app, sim.MechBaseline, nil)
		if err != nil {
			return nil, err
		}
		row := SpeedupRow{App: app, Speedups: map[string]float64{}}
		for _, series := range UDPSeries {
			r, err := o.runUDPSeries(app, series)
			if err != nil {
				return nil, err
			}
			row.Speedups[series] = r.Speedup(base)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (o Options) runUDPSeries(app, series string) (sim.Result, error) {
	switch series {
	case "udp":
		return o.run(app, sim.MechUDP, nil)
	case "udp-infinite":
		return o.run(app, sim.MechUDPInfinite, nil)
	case "eip":
		return o.run(app, sim.MechEIP, nil)
	case "icache-40k":
		return o.run(app, sim.MechBaseline, func(c *sim.Config) {
			c.ICacheBytes = 40 * 1024
			c.ICacheWays = 10
		})
	default:
		return sim.Result{}, fmt.Errorf("experiments: unknown UDP series %q", series)
	}
}

// Figure14 reports icache MPKI for the baseline and the Fig. 13 series.
func Figure14(o Options) ([]MPKIRow, error) {
	var rows []MPKIRow
	for _, app := range o.workloads() {
		row := MPKIRow{App: app, MPKI: map[string]float64{}}
		base, err := o.run(app, sim.MechBaseline, nil)
		if err != nil {
			return nil, err
		}
		row.MPKI["baseline"] = base.IcacheMPKI
		for _, series := range UDPSeries {
			r, err := o.runUDPSeries(app, series)
			if err != nil {
				return nil, err
			}
			row.MPKI[series] = r.IcacheMPKI
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LostRow is one application's instructions-lost-to-icache-miss count
// (per kilo-instruction) under several mechanisms.
type LostRow struct {
	App  string
	Lost map[string]float64
}

// Figure15 reports instructions lost to icache-miss fetch stalls.
func Figure15(o Options) ([]LostRow, error) {
	var rows []LostRow
	for _, app := range o.workloads() {
		row := LostRow{App: app, Lost: map[string]float64{}}
		base, err := o.run(app, sim.MechBaseline, nil)
		if err != nil {
			return nil, err
		}
		row.Lost["baseline"] = base.LostInstrsPKI
		for _, series := range UDPSeries {
			r, err := o.runUDPSeries(app, series)
			if err != nil {
				return nil, err
			}
			row.Lost[series] = r.LostInstrsPKI
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BTBSizes is the Fig. 16 sensitivity grid.
var BTBSizes = []int{1024, 2048, 4096, 8192, 16384}

// Figure16 reports UDP's speedup over the baseline at each BTB size.
func Figure16(o Options) ([]SweepSeries, error) {
	var out []SweepSeries
	for _, app := range o.workloads() {
		s := SweepSeries{App: app, X: BTBSizes}
		for _, n := range BTBSizes {
			entries := n
			base, err := o.run(app, sim.MechBaseline, func(c *sim.Config) { c.BTBEntries = entries })
			if err != nil {
				return nil, err
			}
			udp, err := o.run(app, sim.MechUDP, func(c *sim.Config) { c.BTBEntries = entries })
			if err != nil {
				return nil, err
			}
			s.Values = append(s.Values, udp.Speedup(base))
		}
		out = append(out, s)
	}
	return out, nil
}

// UDPFTQSizes is the Fig. 17 sensitivity grid.
var UDPFTQSizes = []int{16, 32, 64, 128}

// Figure17 reports UDP's speedup over a same-depth baseline at each FTQ
// size.
func Figure17(o Options) ([]SweepSeries, error) {
	var out []SweepSeries
	for _, app := range o.workloads() {
		s := SweepSeries{App: app, X: UDPFTQSizes}
		for _, d := range UDPFTQSizes {
			depth := d
			base, err := o.run(app, sim.MechBaseline, func(c *sim.Config) { c.FTQDepth = depth })
			if err != nil {
				return nil, err
			}
			udp, err := o.run(app, sim.MechUDP, func(c *sim.Config) { c.FTQDepth = depth })
			if err != nil {
				return nil, err
			}
			s.Values = append(s.Values, udp.Speedup(base))
		}
		out = append(out, s)
	}
	return out, nil
}

// valueAt returns the series value at parameter x (0 if absent).
func valueAt(s *SweepSeries, x int) float64 {
	for i, v := range s.X {
		if v == x {
			return s.Values[i]
		}
	}
	return 0
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length samples.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (sqrt(sxx) * sqrt(syy))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// SortedSeriesNames returns the map keys of a speedup row in stable
// order for rendering.
func SortedSeriesNames(rows []SpeedupRow) []string {
	seen := map[string]bool{}
	var names []string
	for _, r := range rows {
		for k := range r.Speedups {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	return names
}
