package experiments

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"udpsim/internal/sim"
)

// engineOptions returns options with instruction counts unique enough
// that the tests below exercise fresh resultCache keys even when other
// tests in the package have already populated the cache.
func engineOptions(instrs uint64) Options {
	return Options{
		Instructions: instrs,
		Warmup:       10_000,
		Simpoints:    1,
		Workloads:    []string{"mysql"},
	}
}

// TestSingleflightDeduplicatesConcurrentRuns issues the same experiment
// key from two goroutines at once and asserts exactly one simulation
// happened (one untagged progress line) while the other caller was
// served by the in-flight runner (one "(cached)" line), with identical
// results. Run with -race this also exercises the engine's locking.
func TestSingleflightDeduplicatesConcurrentRuns(t *testing.T) {
	o := engineOptions(21_001)
	var mu sync.Mutex
	var lines []string
	o.Progress = func(s string) {
		mu.Lock()
		lines = append(lines, s)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	results := make([]sim.Result, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = o.run("mysql", sim.MechBaseline, nil)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	if results[0] != results[1] {
		t.Errorf("deduplicated callers saw different results:\n%v\n%v", results[0], results[1])
	}
	if len(lines) != 2 {
		t.Fatalf("%d progress lines, want 2: %q", len(lines), lines)
	}
	cached := 0
	for _, l := range lines {
		if strings.Contains(l, "(cached)") {
			cached++
		}
	}
	if cached != 1 {
		t.Errorf("want exactly 1 cached + 1 simulated line, got %d cached: %q", cached, lines)
	}
}

// TestRunAllDeterministicOrder submits a grid whose cells are
// distinguishable by FinalFTQDepth and asserts the parallel engine
// returns them in input-grid positions.
func TestRunAllDeterministicOrder(t *testing.T) {
	o := engineOptions(21_002)
	o.Parallelism = 4
	depths := []int{8, 12, 16, 24, 48, 64}
	var jobs []jobSpec
	for _, d := range depths {
		depth := d
		jobs = append(jobs, jobSpec{app: "mysql", mech: sim.MechBaseline,
			mutate: func(c *sim.Config) { c.FTQDepth = depth }})
	}
	results, err := o.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(depths) {
		t.Fatalf("%d results for %d jobs", len(results), len(depths))
	}
	for i, d := range depths {
		if results[i].FinalFTQDepth != d {
			t.Errorf("slot %d: FTQ depth %d, want %d (results out of grid order)",
				i, results[i].FinalFTQDepth, d)
		}
	}

	// A second pass at a different parallelism must be value-identical
	// (fully cache-served) and in the same order.
	o2 := o
	o2.Parallelism = 1
	again, err := o2.runAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if again[i] != results[i] {
			t.Errorf("slot %d differs between parallelism 4 and 1", i)
		}
	}
}

// TestRunAllAggregatesErrors asserts a failing cell doesn't hide other
// cells' failures and that good cells still complete.
func TestRunAllAggregatesErrors(t *testing.T) {
	o := engineOptions(21_003)
	o.Parallelism = 2
	jobs := []jobSpec{
		{app: "mysql", mech: sim.MechBaseline},
		{app: "mysql", mech: "warp-drive"},
		{app: "mysql", mech: sim.Mechanism("flux-capacitor")},
	}
	_, err := o.runAll(jobs)
	if err == nil {
		t.Fatal("invalid mechanisms accepted")
	}
	if !strings.Contains(err.Error(), "warp-drive") || !strings.Contains(err.Error(), "flux-capacitor") {
		t.Errorf("errors not aggregated: %v", err)
	}
}

func TestForEach(t *testing.T) {
	for _, workers := range []int{0, 1, 3} {
		n := 17
		out := make([]int, n)
		err := ForEach(n, workers, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range out {
			if out[i] != i*i {
				t.Errorf("workers=%d: slot %d = %d", workers, i, out[i])
			}
		}
	}
	err := ForEach(4, 2, func(i int) error {
		if i%2 == 1 {
			return errors.New("odd")
		}
		return nil
	})
	if err == nil {
		t.Fatal("errors swallowed")
	}
}

func TestNormalizeSweepErrors(t *testing.T) {
	good := []SweepSeries{{App: "a", X: []int{16, 32}, Values: []float64{1.0, 2.0}}}
	if err := normalizeSweep(good, 32); err != nil {
		t.Fatal(err)
	}
	if good[0].Values[1] != 0 || good[0].Values[0] != -0.5 {
		t.Errorf("normalization wrong: %+v", good[0].Values)
	}

	missing := []SweepSeries{{App: "a", X: []int{16, 64}, Values: []float64{1.0, 2.0}}}
	if err := normalizeSweep(missing, 32); err == nil {
		t.Error("missing baseline accepted")
	}
	zero := []SweepSeries{{App: "a", X: []int{16, 32}, Values: []float64{1.0, 0}}}
	if err := normalizeSweep(zero, 32); err == nil {
		t.Error("zero baseline accepted")
	}
}

// TestParallelismDefault ensures Parallelism <= 0 resolves to a
// positive pool width.
func TestParallelismDefault(t *testing.T) {
	var o Options
	if o.parallelism() < 1 {
		t.Errorf("default parallelism %d", o.parallelism())
	}
	o.Parallelism = 3
	if o.parallelism() != 3 {
		t.Errorf("explicit parallelism ignored: %d", o.parallelism())
	}
}
