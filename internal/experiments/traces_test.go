package experiments

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"udpsim/internal/sim"
	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

const zeroSHA = "0000000000000000000000000000000000000000000000000000000000000000"

// writeTestTrace records a short UDPT2 trace of a small profile into
// dir and returns its path.
func writeTestTrace(t *testing.T, dir, file string, salt uint64) string {
	t.Helper()
	p := workload.MustByName("postgres")
	p.Funcs = 30
	p.DispatchTargets = 20
	var buf bytes.Buffer
	if err := trace.RecordN2(&buf, p, salt, 5_000, trace.EncBinary); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, file)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// validationReasons collects "field: reason" strings of a Validate error.
func validationReasons(t *testing.T, err error) []string {
	t.Helper()
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("error is %T, want *ValidationError: %v", err, err)
	}
	out := make([]string, len(ve.Fields))
	for i, f := range ve.Fields {
		out[i] = f.Error()
	}
	return out
}

func traceDescriptor(specs []TraceSpec, workloads []string) *Descriptor {
	return &Descriptor{
		Name:      "trace-test",
		Traces:    specs,
		Workloads: workloads,
		Configs:   []ConfigSpec{{Label: "base", Mechanism: "baseline"}},
	}
}

func TestTraceSpecValidation(t *testing.T) {
	cases := []struct {
		name      string
		d         *Descriptor
		wantField string
	}{
		{
			"missing-name",
			traceDescriptor([]TraceSpec{{File: "x.udpt2"}}, nil),
			"traces[0].name",
		},
		{
			"duplicate-name",
			traceDescriptor([]TraceSpec{{Name: "a", File: "x"}, {Name: "a", File: "y"}}, nil),
			"traces[1].name",
		},
		{
			"shadows-synthetic",
			traceDescriptor([]TraceSpec{{Name: "mysql", File: "x"}}, nil),
			"traces[0].name",
		},
		{
			"file-or-sha-required",
			traceDescriptor([]TraceSpec{{Name: "a"}}, nil),
			"traces[0].file",
		},
		{
			"bad-sha-hex",
			traceDescriptor([]TraceSpec{{Name: "a", SHA256: "xyz"}}, nil),
			"traces[0].sha256",
		},
		{
			"undeclared-trace-ref",
			traceDescriptor(nil, []string{"trace:ghost"}),
			"workloads[0]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.d.Validate()
			if err == nil {
				t.Fatal("descriptor validated")
			}
			reasons := validationReasons(t, err)
			for _, r := range reasons {
				if strings.HasPrefix(r, tc.wantField+":") {
					return
				}
			}
			t.Errorf("no error on field %q; got %q", tc.wantField, reasons)
		})
	}
}

func TestTraceSimpointsRejected(t *testing.T) {
	d := traceDescriptor([]TraceSpec{{Name: "a", SHA256: zeroSHA}}, nil)
	d.Simpoints = 3
	err := d.Validate()
	if err == nil {
		t.Fatal("simpoints>1 with a trace workload validated")
	}
	found := false
	for _, r := range validationReasons(t, err) {
		found = found || strings.HasPrefix(r, "simpoints:")
	}
	if !found {
		t.Errorf("no simpoints error: %v", err)
	}
}

func TestTraceWorkloadsDefault(t *testing.T) {
	d := traceDescriptor([]TraceSpec{
		{Name: "a", SHA256: zeroSHA},
		{Name: "b", SHA256: strings.Repeat("1", 64)},
	}, nil)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []string{"trace:a", "trace:b"}
	if len(d.Workloads) != len(want) {
		t.Fatalf("Workloads = %v, want %v", d.Workloads, want)
	}
	for i := range want {
		if d.Workloads[i] != want[i] {
			t.Fatalf("Workloads = %v, want %v", d.Workloads, want)
		}
	}
}

func TestResolveTraces(t *testing.T) {
	dir := t.TempDir()
	path := writeTestTrace(t, dir, "svc.udpt2", 2)

	d := traceDescriptor([]TraceSpec{{Name: "svc", File: path}}, nil)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ResolveTraces(d); err != nil {
		t.Fatal(err)
	}
	sha := d.Traces[0].SHA256
	if len(sha) != 64 {
		t.Fatalf("ResolveTraces left sha %q", sha)
	}
	src, ok := workload.SourceByKey("trace:" + sha)
	if !ok {
		t.Fatal("resolved trace not registered")
	}
	if src.Name() != "svc" {
		t.Errorf("registered source name = %q, want the declared spec name", src.Name())
	}

	// A re-submitted descriptor carrying only the hash of the (now
	// registered) trace resolves without touching the filesystem.
	d2 := traceDescriptor([]TraceSpec{{Name: "svc", SHA256: sha}}, nil)
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ResolveTraces(d2); err != nil {
		t.Errorf("hash-only spec of a registered trace failed: %v", err)
	}

	// A hash that is neither registered nor backed by a file fails.
	d3 := traceDescriptor([]TraceSpec{{Name: "svc", SHA256: zeroSHA}}, nil)
	if err := d3.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ResolveTraces(d3); err == nil {
		t.Error("unregistered hash-only spec resolved")
	}

	// A pinned hash that disagrees with the file is a hard error.
	d4 := traceDescriptor([]TraceSpec{{Name: "svc", File: path, SHA256: zeroSHA}}, nil)
	if err := d4.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ResolveTraces(d4); err == nil || !strings.Contains(err.Error(), "pins") {
		t.Errorf("hash mismatch not rejected: %v", err)
	}
}

func TestCellConfigTraceBranch(t *testing.T) {
	d := traceDescriptor([]TraceSpec{{Name: "svc", SHA256: zeroSHA}}, nil)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := CellConfig(d, "trace:svc", d.Configs[0])
	if cfg.TraceRef != zeroSHA {
		t.Errorf("TraceRef = %q", cfg.TraceRef)
	}
	if cfg.Workload.Name != "svc" {
		t.Errorf("Workload.Name = %q", cfg.Workload.Name)
	}
	if got := sim.SourceKey(cfg); got != "trace:"+zeroSHA {
		t.Errorf("SourceKey = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("CellConfig of an undeclared trace did not panic")
		}
	}()
	CellConfig(d, "trace:ghost", d.Configs[0])
}

func TestAddDescriptorTraces(t *testing.T) {
	dir := t.TempDir()
	path := writeTestTrace(t, dir, "webapp.udpt2", 1)
	raw := []byte(`{
		"name": "added",
		"configs": [{"label": "base", "mechanism": "baseline"}]
	}`)

	d, err := AddDescriptorTraces(raw, path+" , ")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Traces) != 1 || d.Traces[0].Name != "webapp" || d.Traces[0].File != path {
		t.Fatalf("Traces = %+v", d.Traces)
	}
	// The empty workload list must default to the added trace, not to
	// the full synthetic corpus.
	if len(d.Workloads) != 1 || d.Workloads[0] != "trace:webapp" {
		t.Fatalf("Workloads = %v", d.Workloads)
	}

	// A base name that shadows a synthetic workload — the usual case
	// for `trace record -workload mysql -o mysql.udpt2` — is
	// disambiguated with a "-trace" suffix instead of erroring.
	shadow := writeTestTrace(t, dir, "mysql.udpt2", 1)
	d2, err := AddDescriptorTraces(raw, shadow)
	if err != nil {
		t.Fatalf("shadowing base name not disambiguated: %v", err)
	}
	if d2.Traces[0].Name != "mysql-trace" {
		t.Errorf("shadowing trace named %q, want mysql-trace", d2.Traces[0].Name)
	}

	if _, err := AddDescriptorTraces([]byte(`{"name":`), path); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestRunDescriptorTraceCell runs a tiny trace-only descriptor end to
// end and checks the result equals a live run of the recorded profile
// region — the experiments-layer leg of the equivalence gate.
func TestRunDescriptorTraceCell(t *testing.T) {
	dir := t.TempDir()
	path := writeTestTrace(t, dir, "svc-e2e.udpt2", 4)

	d := traceDescriptor([]TraceSpec{{Name: "svc-e2e", File: path}}, nil)
	d.Instructions = 2_000
	d.Warmup = 500
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ResolveTraces(d); err != nil {
		t.Fatal(err)
	}
	res, err := RunDescriptor(d, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d cells, want 1", len(res))
	}
	r := res[0].Result
	if r.Instructions == 0 || r.IPC <= 0 {
		t.Errorf("implausible trace cell result: %+v", r)
	}
	if res[0].Workload != "trace:svc-e2e" {
		t.Errorf("cell workload = %q", res[0].Workload)
	}
}
