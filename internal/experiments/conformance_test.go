package experiments

import (
	"fmt"
	"strings"
	"testing"

	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

// TestRegistryConformance is the contract every registered mechanism
// must satisfy to live in the registry: its name round-trips through
// descriptor JSON validation and the result-cache key, and its Build
// produces a machine that actually simulates (a tiny run retires the
// requested instructions with a plausible IPC). A mechanism that
// registers but fails any of these would silently poison experiment
// grids, so the conformance suite runs the whole registry.
func TestRegistryConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	mechs := sim.Mechanisms()
	if len(mechs) == 0 {
		t.Fatal("empty mechanism registry")
	}

	prof := workload.MustByName("mysql")
	prof.Funcs = 60
	prof.DispatchTargets = 40

	seenKeys := map[string]sim.Mechanism{}
	for _, mech := range mechs {
		mech := mech
		t.Run(string(mech), func(t *testing.T) {
			t.Parallel()
			desc, ok := sim.LookupMechanism(mech)
			if !ok {
				t.Fatalf("listed mechanism %q not resolvable", mech)
			}
			if desc.Doc == "" {
				t.Errorf("mechanism %q has no doc line for -list-mechanisms", mech)
			}

			// Round-trip through descriptor JSON validation: the name a
			// user writes in an isca.json-style spec must be accepted.
			js := fmt.Sprintf(`{"name":"conf","workloads":["mysql"],"configs":[{"label":"x","mechanism":%q}]}`, mech)
			if _, err := ParseDescriptor(strings.NewReader(js)); err != nil {
				t.Fatalf("descriptor validation rejects registered mechanism: %v", err)
			}

			// Round-trip through the result-cache key: the mechanism
			// name must be embedded verbatim (cache cells must not
			// alias across mechanisms).
			cfg := sim.NewConfig(prof, mech)
			cfg.MaxInstructions = 50_000
			cfg.WarmupInstructions = 10_000
			key := sim.ConfigKey(cfg)
			if !strings.Contains(key, "mech="+string(mech)+"|") {
				t.Errorf("ConfigKey does not embed mechanism name: %q", key)
			}

			// The binding must assemble into a machine that simulates.
			r, err := sim.RunOne(cfg)
			if err != nil {
				t.Fatalf("RunOne: %v", err)
			}
			if r.Instructions < cfg.MaxInstructions {
				t.Errorf("retired %d < requested %d", r.Instructions, cfg.MaxInstructions)
			}
			if r.IPC <= 0.05 || r.IPC > 6 {
				t.Errorf("implausible IPC %.3f", r.IPC)
			}

			// Counter-sanity invariant of the memory request path: over
			// an unreset window (warmup must be zero — ResetStats wipes
			// the request side of in-flight fills) every line a level
			// installed must trace back to a surviving fill request:
			// fills == requests − merges − drops − retries, per level,
			// and every MSHR allocation must complete once drained. A
			// mechanism whose prefetcher bypassed the request path would
			// break the ledger here.
			icfg := cfg
			icfg.MaxInstructions = 30_000
			icfg.WarmupInstructions = 0
			prog, err := sim.SharedImage(icfg.Workload)
			if err != nil {
				t.Fatal(err)
			}
			m, err := sim.NewMachineWithProgram(icfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			m.Run()
			m.Hier.Drain()
			if err := m.Hier.CheckCounters(); err != nil {
				t.Errorf("counter-sanity invariant: %v", err)
			}
		})
	}

	// Key distinctness is a cross-mechanism property; compute serially.
	for _, mech := range mechs {
		cfg := sim.NewConfig(prof, mech)
		key := sim.ConfigKey(cfg)
		if prev, dup := seenKeys[key]; dup {
			t.Errorf("mechanisms %q and %q share a cache key", mech, prev)
		}
		seenKeys[key] = mech
	}
}
