package experiments

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"udpsim/internal/sim"
)

// TestRunAllBatchedMatchesUnbatched runs the same multi-image,
// multi-mechanism grid through the per-cell engine and the batched
// engine and asserts bit-for-bit identical results — the invariant that
// makes -batch a pure speed knob for every figure driver.
func TestRunAllBatchedMatchesUnbatched(t *testing.T) {
	grid := func() []jobSpec {
		var jobs []jobSpec
		for _, app := range []string{"mysql", "xgboost"} {
			for _, mech := range []sim.Mechanism{sim.MechBaseline, sim.MechUDP} {
				for _, depth := range []int{16, 64} {
					d := depth
					jobs = append(jobs, jobSpec{app: app, mech: mech,
						mutate: func(c *sim.Config) { c.FTQDepth = d }})
				}
			}
		}
		return jobs
	}

	o := engineOptions(21_101)
	o.Workloads = nil
	o.Simpoints = 2
	want, err := o.runAll(grid())
	if err != nil {
		t.Fatal(err)
	}

	// Fresh cache so the batched path actually simulates.
	FlushResultCache()
	ob := o
	ob.Batch = true
	ob.Parallelism = 3
	got, err := ob.runAll(grid())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d: batched result differs\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}

	// Third pass: everything must come from the in-memory cache
	// (duplicate keys resolved without simulating).
	var lines []string
	var mu sync.Mutex
	oc := ob
	oc.Progress = func(s string) { mu.Lock(); lines = append(lines, s); mu.Unlock() }
	if _, err := oc.runAll(grid()); err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if !strings.Contains(l, "(cached)") {
			t.Errorf("expected all-cached rerun, got line %q", l)
		}
	}
}

// TestBatchedSingleflightInterop runs the same keys concurrently
// through a batched and an unbatched engine call: the batch claims
// whole key groups as one writer, the per-cell runner must either win
// a key or wait on the batch, and both must agree bit-for-bit. Under
// -race this is the regression test for the one-writer-per-batch
// locking in the engine's batch-grouping path.
func TestBatchedSingleflightInterop(t *testing.T) {
	o := engineOptions(21_102)
	grid := func() []jobSpec {
		var jobs []jobSpec
		for _, mech := range []sim.Mechanism{sim.MechBaseline, sim.MechUDP, sim.MechUFTQATRAUR} {
			jobs = append(jobs, jobSpec{app: "mysql", mech: mech})
		}
		return jobs
	}

	var wg sync.WaitGroup
	results := make([][]sim.Result, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			oo := o
			oo.Batch = i == 0
			results[i], errs[i] = oo.runAll(grid())
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Errorf("cell %d: batched and unbatched concurrent runs disagree", i)
		}
	}
}

// TestRunDescriptorsBatchedCoalesces merges two descriptor jobs sharing
// a workload image into one pool and asserts per-job results match
// independent unbatched runs, including the cross-job dedup of an
// identical cell.
func TestRunDescriptorsBatchedCoalesces(t *testing.T) {
	mk := func(name string, instrs uint64, labels ...string) *Descriptor {
		d := &Descriptor{
			Name:         name,
			Workloads:    []string{"mysql"},
			Instructions: instrs,
			Warmup:       8_000,
		}
		for _, l := range labels {
			cs := ConfigSpec{Label: l, Mechanism: l}
			d.Configs = append(d.Configs, cs)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	a := mk("job-a", 21_103, "baseline", "udp")
	b := mk("job-b", 21_103, "baseline", "eip") // "baseline" cell identical to job-a's

	wantA, err := RunDescriptor(a, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := RunDescriptor(b, nil, 1)
	if err != nil {
		t.Fatal(err)
	}

	FlushResultCache()
	got, errs := RunDescriptorsBatched(nil, []DescriptorJob{{D: a}, {D: b}}, 2)
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	check := func(got, want []DescriptorResult) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("got %d cells, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("cell %d: coalesced result differs\n got: %+v\nwant: %+v", i, got[i], want[i])
			}
		}
	}
	check(got[0], wantA)
	check(got[1], wantB)
}
