package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"udpsim/internal/sim"
)

// TestForEachCtxCancel verifies the worker-pool primitive stops
// scheduling new iterations once the context is canceled.
func TestForEachCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 1000, 2, func(i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("ForEachCtx ran all %d iterations despite cancellation", n)
	}
}

// TestForEachCtxNilContext keeps the legacy no-context path working.
func TestForEachCtxNilContext(t *testing.T) {
	var ran atomic.Int64
	if err := ForEach(10, 4, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Fatalf("ran %d iterations, want 10", ran.Load())
	}
}

// TestRunConfigCancelMidSimulation is the satellite's headline test: a
// context canceled while a simulation is in flight interrupts the
// machine loop (cooperative poll), propagates context.Canceled, and
// caches nothing — a rerun simulates from scratch.
func TestRunConfigCancelMidSimulation(t *testing.T) {
	FlushResultCache()
	ctx, cancel := context.WithCancel(context.Background())
	o := Options{
		// Far more instructions than the test will simulate; the run
		// must end by cancellation, not completion.
		Instructions: 2_000_000_000,
		Warmup:       10_000,
		Simpoints:    1,
		Context:      ctx,
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := o.run("mysql", sim.MechBaseline, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %s — cooperative poll not working", elapsed)
	}
	// The aborted run must not have poisoned the cache: a fresh, small
	// run under the same options shape completes normally.
	FlushResultCache()
	o2 := Options{Instructions: 30_000, Warmup: 5_000, Simpoints: 1}
	r, err := o2.run("mysql", sim.MechBaseline, nil)
	if err != nil {
		t.Fatalf("rerun after cancel: %v", err)
	}
	if r.IPC <= 0 {
		t.Fatalf("rerun IPC = %v", r.IPC)
	}
}

// TestRunConfigPreCanceled: an already-canceled context fails fast
// without simulating.
func TestRunConfigPreCanceled(t *testing.T) {
	FlushResultCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := Options{Instructions: 1_000_000, Simpoints: 1, Context: ctx}
	start := time.Now()
	_, err := o.run("mysql", sim.MechBaseline, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("pre-canceled run did not fail fast")
	}
}

// TestRunDescriptorObservedCancel cancels a whole descriptor grid.
func TestRunDescriptorObservedCancel(t *testing.T) {
	FlushResultCache()
	ctx, cancel := context.WithCancel(context.Background())
	d := &Descriptor{
		Name:         "cancel-grid",
		Workloads:    []string{"mysql"},
		Instructions: 2_000_000_000,
		Simpoints:    1,
		Configs:      []ConfigSpec{{Label: "base", Mechanism: "baseline"}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := RunDescriptorObserved(d, nil, 1, Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
