package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"udpsim/internal/obs"
	"udpsim/internal/sim"
)

// This file is the parallel run engine behind every figure/table
// driver: the full (workload, mechanism, config) grid of a driver is
// materialized as a job list up front and executed on a bounded worker
// pool, while results are collected positionally so the output order —
// and therefore every rendered table, series and CSV — is byte-for-byte
// identical at any parallelism.
//
// The process-wide result cache is singleflighted: when two concurrent
// jobs (or two figures sharing a baseline) request the same canonical
// config key, the second blocks on the first runner instead of
// simulating the same deterministic region twice. Waiters never
// deadlock the pool: an in-flight entry only exists once its runner
// already occupies a worker slot, so every waiter's dependency is
// guaranteed to be executing.

// resultCache memoizes completed runs process-wide: several figures
// share configurations (every speedup figure needs the same baselines,
// Fig. 11/12 and Table III all need the Fig. 3 sweep), and simulations
// are deterministic, so recomputing them is pure waste.
var (
	resultMu       sync.Mutex
	resultCache    = map[string]sim.Result{}
	resultInflight = map[string]*resultCall{}
)

type resultCall struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// parallelism resolves the worker-pool width: Options.Parallelism when
// positive, else GOMAXPROCS.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// jobSpec is one simulation of a driver's grid.
type jobSpec struct {
	app    string
	mech   sim.Mechanism
	mutate func(*sim.Config)
}

// runAll executes the jobs on a bounded worker pool and returns their
// results in input order. Errors are aggregated (errors.Join) rather
// than short-circuiting, so a failed cell reports every failure of the
// grid at once. Cancellation (Options.Context) both skips cells that
// have not started and stops in-flight machines cooperatively.
func (o Options) runAll(jobs []jobSpec) ([]sim.Result, error) {
	results := make([]sim.Result, len(jobs))
	workers := o.parallelism()
	// Live grid-cell progress for the expvar endpoint (/debug/vars).
	obs.JobsTotal.Add(int64(len(jobs)))
	err := ForEachCtx(o.ctx(), len(jobs), workers, func(i int) error {
		var err error
		results[i], err = o.run(jobs[i].app, jobs[i].mech, jobs[i].mutate)
		obs.JobsDone.Add(1)
		return err
	})
	return results, err
}

// ForEach runs fn(i) for i in [0, n) on a bounded worker pool of the
// given width (<= 0 means GOMAXPROCS, 1 runs serially) and aggregates
// all errors — the engine primitive for grids whose per-cell work is
// not a plain Options.run call (Table I's trace characterization,
// descriptor cells, cmd/sweep's grid). fn must write its result into
// slot i of a caller-owned slice so output order stays deterministic.
func ForEach(n, workers int, fn func(int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done, iterations
// that have not started report ctx.Err() instead of running (in-flight
// iterations are the callee's responsibility — Options.run threads the
// same context into the machine loop). The aggregated error therefore
// contains ctx.Err() whenever the grid was cut short.
func ForEachCtx(ctx context.Context, n, workers int, fn func(int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, n)
	run := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(i)
	}
	if workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = run(i)
		}
		return errors.Join(errs...)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = run(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
