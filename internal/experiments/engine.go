package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"udpsim/internal/obs"
	"udpsim/internal/sim"
)

// This file is the parallel run engine behind every figure/table
// driver: the full (workload, mechanism, config) grid of a driver is
// materialized as a job list up front and executed on a bounded worker
// pool, while results are collected positionally so the output order —
// and therefore every rendered table, series and CSV — is byte-for-byte
// identical at any parallelism.
//
// The process-wide result cache is singleflighted: when two concurrent
// jobs (or two figures sharing a baseline) request the same canonical
// config key, the second blocks on the first runner instead of
// simulating the same deterministic region twice. Waiters never
// deadlock the pool: an in-flight entry only exists once its runner
// already occupies a worker slot, so every waiter's dependency is
// guaranteed to be executing.

// resultCache memoizes completed runs process-wide: several figures
// share configurations (every speedup figure needs the same baselines,
// Fig. 11/12 and Table III all need the Fig. 3 sweep), and simulations
// are deterministic, so recomputing them is pure waste.
var (
	resultMu       sync.Mutex
	resultCache    = map[string]sim.Result{}
	resultInflight = map[string]*resultCall{}
)

type resultCall struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// parallelism resolves the worker-pool width: Options.Parallelism when
// positive, else GOMAXPROCS.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// jobSpec is one simulation of a driver's grid.
type jobSpec struct {
	app    string
	mech   sim.Mechanism
	mutate func(*sim.Config)
}

// runAll executes the jobs on a bounded worker pool and returns their
// results in input order. Errors are aggregated (errors.Join) rather
// than short-circuiting, so a failed cell reports every failure of the
// grid at once. Cancellation (Options.Context) both skips cells that
// have not started and stops in-flight machines cooperatively.
func (o Options) runAll(jobs []jobSpec) ([]sim.Result, error) {
	results := make([]sim.Result, len(jobs))
	workers := o.parallelism()
	// Live grid-cell progress for the expvar endpoint (/debug/vars).
	obs.JobsTotal.Add(int64(len(jobs)))
	if o.Batch {
		cells := make([]batchCell, len(jobs))
		for i, j := range jobs {
			cells[i] = batchCell{
				name: j.app, mech: j.mech,
				cfg: o.cellConfig(j.app, j.mech, j.mutate), opts: o,
			}
		}
		res, errs := runCellsBatched(o.ctx(), cells, workers, func() { obs.JobsDone.Add(1) })
		copy(results, res)
		return results, errors.Join(errs...)
	}
	err := ForEachCtx(o.ctx(), len(jobs), workers, func(i int) error {
		var err error
		results[i], err = o.run(jobs[i].app, jobs[i].mech, jobs[i].mutate)
		obs.JobsDone.Add(1)
		return err
	})
	return results, err
}

// maxBatchSize caps how many machines share one lockstep batch. Past
// ~16 the scheduler's cursor scan and the per-machine cache footprint
// eat the locality win, and 16 matches the headline 16-config sweep.
const maxBatchSize = 16

// batchCell is one grid cell of a batched run: its identity for
// progress lines, its full config, and the Options owning its cache
// behaviour and observability hooks (cells of a coalesced daemon group
// carry different Options).
type batchCell struct {
	name string
	mech sim.Mechanism
	cfg  sim.Config
	opts Options
}

// runCellsBatched is the batched counterpart of per-cell Options.run:
// it resolves every cell against the memoized cache, the in-flight
// table, and the persistent store exactly like runConfig does, then
// groups the cells that actually need simulating by workload image and
// runs each group in lockstep over one shared stream. The singleflight
// protocol inverts from one-writer-per-cell to one-writer-per-batch:
// this call claims every key it will simulate up front (so concurrent
// unbatched or batched runners wait on it), publishes each key as its
// batch completes, and only then waits for keys claimed by others —
// claimed keys always belong to a runner already executing, so the
// wait graph stays acyclic. onCellDone (if non-nil) fires once per
// finalized cell (the expvar progress counter).
func runCellsBatched(ctx context.Context, cells []batchCell, workers int, onCellDone func()) ([]sim.Result, []error) {
	n := len(cells)
	results := make([]sim.Result, n)
	errs := make([]error, n)
	done := func(int) {
		if onCellDone != nil {
			onCellDone()
		}
	}

	// group is one unique cache key: the cell indices sharing it and,
	// when this call claims the key, the inflight entry to resolve.
	type group struct {
		key   string
		call  *resultCall
		cells []int
	}
	var claimed []*group              // keys this call simulates, in first-cell order
	byKey := map[string]*group{}      // claimed groups
	waiting := map[int]*resultCall{}  // cell -> another runner's inflight entry
	cached := map[int]sim.Result{}    // cells served from the in-memory cache

	resultMu.Lock()
	for i, c := range cells {
		key := CacheKey(c.cfg, c.opts.Simpoints)
		if g, ok := byKey[key]; ok {
			g.cells = append(g.cells, i)
			continue
		}
		if r, ok := resultCache[key]; ok {
			cached[i] = r
			continue
		}
		if call, ok := resultInflight[key]; ok {
			waiting[i] = call
			continue
		}
		call := &resultCall{done: make(chan struct{})}
		resultInflight[key] = call
		g := &group{key: key, call: call, cells: []int{i}}
		byKey[key] = g
		claimed = append(claimed, g)
	}
	resultMu.Unlock()

	for i, r := range cached {
		obs.CacheHits.Add(1)
		results[i] = r
		c := cells[i]
		c.opts.progress("%s/%s ftq=%d: IPC %.4f (cached)", c.name, c.mech, r.FinalFTQDepth, r.IPC)
		done(i)
	}

	// finish publishes one claimed key — cache, waiters, and every cell
	// of the group — exactly once.
	finish := func(g *group, res sim.Result, err error) {
		resultMu.Lock()
		if err == nil {
			resultCache[g.key] = res
		}
		g.call.res, g.call.err = res, err
		delete(resultInflight, g.key)
		resultMu.Unlock()
		close(g.call.done)
		for _, i := range g.cells {
			results[i], errs[i] = res, err
			done(i)
		}
	}

	// Persistent-store read-through for claimed keys; the rest simulate.
	var toRun []*group
	for _, g := range claimed {
		c := cells[g.cells[0]]
		spanStore := c.opts.spanStore()
		readStart := time.Now()
		agg, hit := c.opts.storeLoad(g.key)
		if spanStore {
			c.opts.OnSpan(obs.Span{Name: "store-read", Start: readStart, End: time.Now(),
				Args: map[string]any{"key": g.key, "hit": hit}})
		}
		if hit {
			finish(g, agg, nil)
			c.opts.progress("%s/%s ftq=%d: IPC %.4f (store)", c.name, c.mech, agg.FinalFTQDepth, agg.IPC)
			continue
		}
		obs.CacheMisses.Add(1)
		toRun = append(toRun, g)
	}

	// Group the remaining work by (workload image, simpoint count) —
	// the identity of the shared stream — and run each group's configs
	// in lockstep, maxBatchSize machines at a time.
	type imageGroup struct {
		key    string
		groups []*group
	}
	var images []*imageGroup
	byImage := map[string]*imageGroup{}
	for _, g := range toRun {
		c := cells[g.cells[0]]
		ik := fmt.Sprintf("%s|sp=%d", sim.SourceKey(c.cfg), c.opts.simpoints())
		ig, ok := byImage[ik]
		if !ok {
			ig = &imageGroup{key: ik}
			byImage[ik] = ig
			images = append(images, ig)
		}
		ig.groups = append(ig.groups, g)
	}
	for _, ig := range images {
		for lo := 0; lo < len(ig.groups); lo += maxBatchSize {
			hi := lo + maxBatchSize
			if hi > len(ig.groups) {
				hi = len(ig.groups)
			}
			chunk := ig.groups[lo:hi]
			if err := ctx.Err(); err != nil {
				for _, g := range chunk {
					finish(g, sim.Result{}, err)
				}
				continue
			}
			cfgs := make([]sim.Config, len(chunk))
			atts := make([]func(int, *sim.Machine), len(chunk))
			for k, g := range chunk {
				c := cells[g.cells[0]]
				cfgs[k] = c.cfg
				atts[k] = c.opts.attachCell(c.name, c.mech)
			}
			res, rerrs := sim.RunBatchSimpoints(ctx, cfgs, cells[chunk[0].cells[0]].opts.simpoints(), workers,
				func(region, k int, m *sim.Machine) {
					if atts[k] != nil {
						atts[k](region, m)
					}
				})
			for k, g := range chunk {
				if rerrs[k] != nil {
					finish(g, sim.Result{}, rerrs[k])
					continue
				}
				c := cells[g.cells[0]]
				spanStore := c.opts.spanStore()
				writeStart := time.Now()
				c.opts.storeSave(g.key, res[k])
				if spanStore {
					c.opts.OnSpan(obs.Span{Name: "store-write", Start: writeStart, End: time.Now(),
						Args: map[string]any{"key": g.key}})
				}
				finish(g, res[k], nil)
				c.opts.progress("%s/%s ftq=%d: IPC %.4f", c.name, c.mech, res[k].FinalFTQDepth, res[k].IPC)
			}
		}
	}

	// Finally resolve cells whose keys another runner claimed. That
	// runner held a worker slot before we claimed anything, so it
	// completes (or cancels) independently of us.
	for i, call := range waiting {
		obs.CacheInflightWaits.Add(1)
		c := cells[i]
		select {
		case <-call.done:
		case <-ctx.Done():
			errs[i] = ctx.Err()
			done(i)
			continue
		}
		if call.err != nil {
			errs[i] = call.err
			done(i)
			continue
		}
		results[i] = call.res
		c.opts.progress("%s/%s ftq=%d: IPC %.4f (cached)", c.name, c.mech, call.res.FinalFTQDepth, call.res.IPC)
		done(i)
	}
	return results, errs
}

// ForEach runs fn(i) for i in [0, n) on a bounded worker pool of the
// given width (<= 0 means GOMAXPROCS, 1 runs serially) and aggregates
// all errors — the engine primitive for grids whose per-cell work is
// not a plain Options.run call (Table I's trace characterization,
// descriptor cells, cmd/sweep's grid). fn must write its result into
// slot i of a caller-owned slice so output order stays deterministic.
func ForEach(n, workers int, fn func(int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done, iterations
// that have not started report ctx.Err() instead of running (in-flight
// iterations are the callee's responsibility — Options.run threads the
// same context into the machine loop). The aggregated error therefore
// contains ctx.Err() whenever the grid was cut short.
func ForEachCtx(ctx context.Context, n, workers int, fn func(int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, n)
	run := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(i)
	}
	if workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = run(i)
		}
		return errors.Join(errs...)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = run(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
