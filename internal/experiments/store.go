package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"udpsim/internal/obs"
	"udpsim/internal/sim"
)

// This file is the seam between the in-process result cache (engine.go)
// and a persistent result store (internal/serve's disk-backed,
// content-addressed store). The engine's cache reads *through* the
// store: an in-memory miss probes the store before simulating, and a
// completed simulation is written back. The hook is an interface so
// internal/experiments does not import internal/serve (the daemon
// depends on the engine, never the reverse).

// ResultStore is a persistent result cache consulted by Options.run on
// in-memory misses and populated on completed simulations. Both methods
// must be safe for concurrent use.
//
// Load returns (result, true, nil) on a hit and (zero, false, nil) on a
// clean miss; an error means the store itself failed (I/O), which the
// engine treats as a miss (the simulation reruns) after counting it.
// Save persistence failures are the store's problem to report; the
// engine ignores them beyond counting, because a failed write-back must
// never fail the simulation that produced the result.
type ResultStore interface {
	Load(key string) (sim.Result, bool, error)
	Save(key string, r sim.Result) error
}

// store holds the installed ResultStore (atomic so Options.run can read
// it lock-free on the hot path). Nil means in-memory caching only.
var store atomic.Value // of resultStoreBox

// resultStoreBox wraps the interface so atomic.Value sees one concrete
// type even when different ResultStore implementations are installed.
type resultStoreBox struct{ s ResultStore }

// SetResultStore installs (or, with nil, removes) the persistent store
// the engine cache reads through. Typically called once at daemon
// startup before any simulation runs.
func SetResultStore(s ResultStore) { store.Store(resultStoreBox{s: s}) }

func currentStore() ResultStore {
	if b, ok := store.Load().(resultStoreBox); ok {
		return b.s
	}
	return nil
}

// CacheKey returns the canonical result-cache key for one simulated
// configuration at a given simpoint count — the exact string Options.run
// memoizes under, and therefore the key the persistent store is
// addressed by. Exported so the daemon can compute per-cell result
// addresses without rerunning anything.
func CacheKey(cfg sim.Config, simpoints int) string {
	if simpoints <= 0 {
		simpoints = 1
	}
	return fmt.Sprintf("%s|sp=%d", sim.ConfigKey(cfg), simpoints)
}

// FlushResultCache drops every entry of the in-process result cache
// (in-flight runs are unaffected: their waiters still resolve). The
// persistent store, if any, is untouched — after a flush the next run
// of a known configuration is served from disk, which is exactly what
// the daemon-restart tests exercise.
func FlushResultCache() {
	resultMu.Lock()
	resultCache = map[string]sim.Result{}
	resultMu.Unlock()
}

// store resolves the persistent store this Options reads through: the
// per-run Options.Store when set, else the process-global one. The
// per-run override exists for multi-node setups (several in-process
// daemon instances, each with its own disk store or peer transport)
// where a process-global would make every node share one store.
func (o Options) store() ResultStore {
	if o.Store != nil {
		return o.Store
	}
	return currentStore()
}

// storeLoad probes this run's persistent store (if any) for key,
// maintaining the obs counters and the read-latency histogram. The
// bool reports a usable hit.
func (o Options) storeLoad(key string) (sim.Result, bool) {
	st := o.store()
	if st == nil {
		return sim.Result{}, false
	}
	start := time.Now()
	r, ok, err := st.Load(key)
	obs.StoreReadUS.Observe(obs.SinceUS(start))
	if err != nil {
		obs.StoreErrors.Add(1)
		return sim.Result{}, false
	}
	if !ok {
		obs.StoreMisses.Add(1)
		return sim.Result{}, false
	}
	obs.StoreHits.Add(1)
	return r, true
}

// storeSave writes a completed result back to this run's persistent
// store (if any). Failures are counted, never propagated: the
// simulation already succeeded.
func (o Options) storeSave(key string, r sim.Result) {
	st := o.store()
	if st == nil {
		return
	}
	start := time.Now()
	err := st.Save(key, r)
	obs.StoreWriteUS.Observe(obs.SinceUS(start))
	if err != nil {
		obs.StoreErrors.Add(1)
		return
	}
	obs.StoreWrites.Add(1)
}
