package experiments

import (
	"math"
	"strings"
	"testing"

	"udpsim/internal/workload"
)

// tinyOptions shrinks everything so figure harnesses run in unit-test
// time; the tiny workload list still covers two contrasting apps.
func tinyOptions() Options {
	// Shrink the evaluated profiles via the sweep path by overriding
	// the workloads list only; instruction counts are already small.
	return Options{
		Instructions: 40_000,
		Warmup:       40_000,
		Simpoints:    1,
		Workloads:    []string{"mysql"},
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if c := Correlation(xs, xs); math.Abs(c-1) > 1e-9 {
		t.Errorf("self correlation %v", c)
	}
	ys := []float64{4, 3, 2, 1}
	if c := Correlation(xs, ys); math.Abs(c+1) > 1e-9 {
		t.Errorf("anti correlation %v", c)
	}
	if c := Correlation(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("constant correlation %v", c)
	}
	if c := Correlation(nil, nil); c != 0 {
		t.Errorf("empty correlation %v", c)
	}
	if c := Correlation(xs, ys[:2]); c != 0 {
		t.Errorf("mismatched lengths %v", c)
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rows, err := Figure1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.Speedups["perfect-icache"] < 0 {
		t.Errorf("perfect icache slowed down: %+v", r.Speedups)
	}
	if r.Speedups["no-prefetch"] > 0.01 {
		t.Errorf("no-prefetch sped up: %+v", r.Speedups)
	}
}

func TestFigure17SameDepthComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := tinyOptions()
	series, err := Figure17(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Values) != len(UDPFTQSizes) {
		t.Fatalf("series shape: %+v", series)
	}
}

func TestRunCachesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := tinyOptions()
	// Unique instruction count → fresh cache key even when other tests
	// in the package already simulated mysql/baseline.
	o.Instructions = 41_234
	var lines []string
	o.Progress = func(s string) { lines = append(lines, s) }
	r1, err := o.run("mysql", "baseline", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || strings.Contains(lines[0], "(cached)") {
		t.Fatalf("first run progress: %q", lines)
	}
	r2, err := o.run("mysql", "baseline", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("cache returned a different result")
	}
	// Cache hits must still report progress (tagged) so -v run counts
	// don't under-report completed work.
	if len(lines) != 2 || !strings.Contains(lines[1], "(cached)") {
		t.Errorf("second run should emit a '(cached)' progress line: %q", lines)
	}
}

func TestSortedSeriesNames(t *testing.T) {
	rows := []SpeedupRow{
		{App: "a", Speedups: map[string]float64{"z": 1, "a": 2}},
		{App: "b", Speedups: map[string]float64{"m": 3}},
	}
	names := SortedSeriesNames(rows)
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Errorf("names = %v", names)
	}
}

func TestWorkloadsDefault(t *testing.T) {
	var o Options
	if len(o.workloads()) != len(workload.Names) {
		t.Error("default workload list wrong")
	}
}

func TestRunUDPSeriesUnknown(t *testing.T) {
	o := tinyOptions()
	if _, err := o.runUDPSeries("mysql", "quantum"); err == nil {
		t.Error("unknown series accepted")
	}
}

func TestTable1Characterization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rows, err := Table1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.StaticKB == 0 || r.DynamicKB == 0 || r.BranchPct <= 0 || r.BaselineIPC <= 0 {
		t.Errorf("degenerate characterization: %+v", r)
	}
	if r.DynamicKB > r.StaticKB {
		t.Errorf("dynamic footprint %d exceeds static %d", r.DynamicKB, r.StaticKB)
	}
}

func TestDescriptorParseValidate(t *testing.T) {
	good := `{"name":"t","workloads":["mysql"],"configs":[{"label":"a","mechanism":"baseline"}]}`
	d, err := ParseDescriptor(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if d.Instructions == 0 || d.Simpoints == 0 {
		t.Error("defaults not applied")
	}
	bad := []string{
		`{`,
		`{"name":"","configs":[{"label":"a","mechanism":"baseline"}]}`,
		`{"name":"t","configs":[]}`,
		`{"name":"t","configs":[{"label":"","mechanism":"baseline"}]}`,
		`{"name":"t","configs":[{"label":"a","mechanism":"warp"}]}`,
		`{"name":"t","configs":[{"label":"a","mechanism":"baseline"},{"label":"a","mechanism":"udp"}]}`,
		`{"name":"t","workloads":["nginx"],"configs":[{"label":"a","mechanism":"baseline"}]}`,
		`{"name":"t","unknown_field":1,"configs":[{"label":"a","mechanism":"baseline"}]}`,
	}
	for i, src := range bad {
		if _, err := ParseDescriptor(strings.NewReader(src)); err == nil {
			t.Errorf("bad descriptor %d accepted", i)
		}
	}
}

func TestDescriptorEmptyWorkloadsMeansAll(t *testing.T) {
	d, err := ParseDescriptor(strings.NewReader(
		`{"name":"t","configs":[{"label":"a","mechanism":"baseline"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Workloads) != len(workload.Names) {
		t.Errorf("%d workloads", len(d.Workloads))
	}
}

func TestRunDescriptorAndPivot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	d, err := ParseDescriptor(strings.NewReader(`{
		"name":"t","workloads":["mysql"],"instructions":60000,"warmup":20000,
		"configs":[
			{"label":"baseline","mechanism":"baseline"},
			{"label":"ftq16","mechanism":"baseline","ftq":16}
		]}`))
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the workload for test speed; run the grid two-wide to
	// exercise the parallel path (row order must be unaffected).
	results, err := RunDescriptor(d, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if results[1].Result.FinalFTQDepth != 16 {
		t.Errorf("override not applied: %d", results[1].Result.FinalFTQDepth)
	}
	var csv strings.Builder
	if err := WriteCSV(&csv, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "mysql,ftq16,") {
		t.Error("CSV missing row")
	}
	rows, err := SpeedupTable(results, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Speedups) != 1 {
		t.Errorf("pivot shape: %+v", rows)
	}
	if _, err := SpeedupTable(results, "nope"); err == nil {
		t.Error("unknown base accepted")
	}
}

// TestAllFigureHarnesses exercises every figure function end to end at
// micro fidelity on one workload, checking structural invariants.
func TestAllFigureHarnesses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	o := tinyOptions()

	series, optima, err := Figure3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Values) != len(FTQDepths) {
		t.Fatalf("Figure3 shape: %+v", series)
	}
	if v := valueAt(&series[0], 32); v != 0 {
		t.Errorf("Figure3 not normalized to depth 32: %v", v)
	}
	if optima["mysql"] == 0 {
		t.Error("Figure3 found no optimum")
	}

	for name, fn := range map[string]func(Options) ([]SweepSeries, error){
		"Figure4": Figure4, "Figure5": Figure5, "Figure6": Figure6, "Figure8": Figure8,
	} {
		ss, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, s := range ss {
			for _, v := range s.Values {
				if v < 0 {
					t.Errorf("%s has negative value %v", name, v)
				}
			}
		}
	}
	// Ratio metrics are bounded by 1.
	for name, fn := range map[string]func(Options) ([]SweepSeries, error){
		"Figure4": Figure4, "Figure5": Figure5, "Figure6": Figure6,
	} {
		ss, _ := fn(o)
		for _, s := range ss {
			for _, v := range s.Values {
				if v > 1 {
					t.Errorf("%s ratio %v > 1", name, v)
				}
			}
		}
	}

	rows, optima2, err := Figure11(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Speedups) != 4 {
		t.Fatalf("Figure11 shape: %+v", rows)
	}
	if optima2["mysql"] != optima["mysql"] {
		t.Error("Figure11 recomputed different optima (cache broken)")
	}

	mpki, err := Figure12(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(mpki) != 1 || mpki[0].MPKI["baseline"] <= 0 {
		t.Fatalf("Figure12: %+v", mpki)
	}

	udpRows, err := Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(udpRows[0].Speedups) != len(UDPSeries) {
		t.Fatalf("Figure13 series: %+v", udpRows[0].Speedups)
	}

	mpki14, err := Figure14(o)
	if err != nil {
		t.Fatal(err)
	}
	if mpki14[0].MPKI["udp"] < 0 {
		t.Error("Figure14 negative MPKI")
	}

	lost, err := Figure15(o)
	if err != nil {
		t.Fatal(err)
	}
	if lost[0].Lost["baseline"] < 0 {
		t.Error("Figure15 negative lost count")
	}

	btb, err := Figure16(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(btb[0].X) != len(BTBSizes) {
		t.Fatalf("Figure16 grid: %+v", btb[0].X)
	}

	tbl, cu, ct, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl) != 1 || tbl[0].Utility <= 0 || tbl[0].Timeliness <= 0 {
		t.Fatalf("Table3: %+v", tbl)
	}
	// Correlations are degenerate with one workload but must be finite.
	if math.IsNaN(cu) || math.IsNaN(ct) {
		t.Error("Table3 correlations NaN")
	}
}
