package experiments

import (
	"bytes"

	"udpsim/internal/sim"
	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

// Table1Row characterizes one application, mirroring the workload table
// papers of this genre lead their evaluation with: static and dynamic
// instruction footprint, branch density, and baseline miss rates.
type Table1Row struct {
	App string
	// StaticKB is the generated code image size.
	StaticKB int
	// DynamicKB is the instruction footprint touched in the
	// characterization window.
	DynamicKB int
	// BranchPct is the fraction of dynamic instructions that are
	// control transfers.
	BranchPct float64
	// TakenPct is the fraction of dynamic instructions that redirect
	// fetch.
	TakenPct float64
	// IcacheMPKI and BranchMPKI are the FDIP-32 baseline rates.
	IcacheMPKI float64
	BranchMPKI float64
	// BaselineIPC is the FDIP-32 IPC.
	BaselineIPC float64
}

// Table1 builds the workload characterization table. Each app's
// characterization (trace window + baseline run) is an independent
// cell, so apps run concurrently on the engine's worker pool; the row
// order stays the input workload order.
func Table1(o Options) ([]Table1Row, error) {
	apps := o.workloads()
	rows := make([]Table1Row, len(apps))
	err := ForEach(len(apps), o.parallelism(), func(i int) error {
		app := apps[i]
		prof := workload.MustByName(app)
		prog, err := sim.SharedImage(prof)
		if err != nil {
			return err
		}

		// Dynamic characterization from a recorded window.
		var buf bytes.Buffer
		n := o.Instructions
		if n < 100_000 {
			n = 100_000
		}
		if err := trace.RecordN(&buf, prof, 0, n); err != nil {
			return err
		}
		r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		st, err := trace.Analyze(prog, r)
		if err != nil {
			return err
		}

		base, err := o.run(app, sim.MechBaseline, nil)
		if err != nil {
			return err
		}

		rows[i] = Table1Row{
			App:         app,
			StaticKB:    prog.FootprintBytes() / 1024,
			DynamicKB:   st.FootprintBytes() / 1024,
			BranchPct:   float64(st.Branches) / float64(st.Instructions) * 100,
			TakenPct:    st.TakenRatio() * 100,
			IcacheMPKI:  base.IcacheMPKI,
			BranchMPKI:  base.BranchMPKI,
			BaselineIPC: base.IPC,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
