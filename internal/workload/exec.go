package workload

import (
	"udpsim/internal/isa"
)

// Executor walks a Program architecturally, producing the oracle
// (on-path) dynamic instruction stream. It is the model's stand-in for
// Scarab's execution-driven frontend: the simulator's decoupled frontend
// consumes this stream for on-path resolution while walking the static
// image itself for (possibly wrong-path) fetch.
type Executor struct {
	prog *Program
	r    *rng
	pc   isa.Addr
	seq  uint64

	// Architectural call stack.
	stack []isa.Addr

	// Per-branch instance counters for periodic branches and live loop
	// iteration state, dense slices indexed by CondMeta.Idx so the hot
	// path never touches a map (zero-alloc Step invariant). loopGoal==0
	// means "unset": tripFor always returns >= 1.
	instCount []uint64
	loopIter  []uint32
	loopGoal  []uint32

	// Data-address stream state: loads tagged "stream" advance.
	streamOff uint64

	// Phase rotation.
	phaseLen   uint64
	phase      uint64
	phaseShift int

	// Round-robin dispatcher cursor (DispatchSequential).
	dispatchRR uint64
}

// NewExecutor starts an executor at the program entry. seedSalt allows
// multiple independent "simpoints" of the same program: different salts
// produce different dynamic behaviour over the same static image.
func NewExecutor(prog *Program, seedSalt uint64) *Executor {
	n := prog.CondSites()
	return &Executor{
		prog:      prog,
		r:         newRNG(prog.profile.Seed*0x9e3779b97f4a7c15 + seedSalt + 1),
		pc:        prog.entry,
		stack:     make([]isa.Addr, 0, 64),
		instCount: make([]uint64, n),
		loopIter:  make([]uint32, n),
		loopGoal:  make([]uint32, n),
		phaseLen:  prog.profile.PhaseLen,
	}
}

// PC returns the executor's current architectural program counter.
func (e *Executor) PC() isa.Addr { return e.pc }

// Seq returns the number of instructions executed so far.
func (e *Executor) Seq() uint64 { return e.seq }

// Next executes one instruction and returns its dynamic record. The
// returned DynInstr's Static pointer aliases the program image.
func (e *Executor) Next() isa.DynInstr {
	si := e.prog.InstrAt(e.pc)
	e.seq++
	d := isa.DynInstr{Static: si, Seq: e.seq}

	switch {
	case si.Branch == isa.BranchNone:
		d.Target = si.FallThrough
		if si.Class == isa.ClassLoad || si.Class == isa.ClassStore {
			d.DataAddr = e.resolveData(si)
		}
	case si.Branch == isa.BranchCond:
		d.Taken = e.resolveCond(si)
		if d.Taken {
			d.Target = si.Target
		} else {
			d.Target = si.FallThrough
		}
	case si.Branch == isa.BranchUncond:
		d.Taken = true
		d.Target = si.Target
	case si.Branch == isa.BranchCall:
		d.Taken = true
		d.Target = si.Target
		e.stack = append(e.stack, si.FallThrough)
	case si.Branch == isa.BranchReturn:
		d.Taken = true
		if n := len(e.stack); n > 0 {
			d.Target = e.stack[n-1]
			e.stack = e.stack[:n-1]
		} else {
			// Underflow cannot happen from the dispatcher entry; guard
			// for robustness by restarting the program.
			d.Target = e.prog.entry
		}
	case si.Branch == isa.BranchIndirect || si.Branch == isa.BranchIndirectCall:
		d.Taken = true
		d.Target = e.resolveIndirect(si)
		if si.Branch == isa.BranchIndirectCall {
			e.stack = append(e.stack, si.FallThrough)
		}
	}

	e.pc = d.Target
	if d.Target == 0 {
		e.pc = si.FallThrough
		d.Target = e.pc
	}
	if e.phaseLen > 0 && e.seq%e.phaseLen == 0 {
		e.phase++
		e.phaseShift = int(e.phase) * 7
	}
	return d
}

// resolveCond applies the branch's behaviour process.
func (e *Executor) resolveCond(si *isa.StaticInstr) bool {
	m := e.prog.conds[si.PC]
	if m == nil {
		// Padding/unknown conditionals (off-image) never occur on-path.
		return false
	}
	switch m.Behavior {
	case CondBiased, CondIID:
		return e.r.float() < m.PTaken
	case CondPeriodic:
		i := e.instCount[m.Idx]
		e.instCount[m.Idx] = i + 1
		return m.PatternBits>>(i%uint64(m.Period))&1 == 1
	case CondLoop:
		iter := e.loopIter[m.Idx]
		goal := e.loopGoal[m.Idx]
		if goal == 0 {
			goal = e.tripFor(m)
			e.loopGoal[m.Idx] = goal
		}
		if iter+1 < goal {
			e.loopIter[m.Idx] = iter + 1
			return true // back edge: continue loop
		}
		e.loopIter[m.Idx] = 0
		e.loopGoal[m.Idx] = 0 // unset: re-roll the trip next entry
		return false // exit
	default:
		return false
	}
}

func (e *Executor) tripFor(m *CondMeta) uint32 {
	t := m.Trip
	if m.TripJitter > 0 {
		lo := t - m.TripJitter
		t = lo + uint32(e.r.intn(int(2*m.TripJitter+1)))
	}
	if t == 0 {
		t = 1
	}
	return t
}

// resolveIndirect samples the branch's target distribution. The
// dispatcher's distribution rotates with the phase, shifting the hot
// set to exercise always-on adaptation.
func (e *Executor) resolveIndirect(si *isa.StaticInstr) isa.Addr {
	m := e.prog.indirects[si.PC]
	if m == nil || len(m.Targets) == 0 {
		return si.FallThrough
	}
	if si.PC == e.prog.dispatchPC && e.prog.profile.DispatchSequential {
		idx := int(e.dispatchRR) % len(m.Targets)
		e.dispatchRR++
		return m.Targets[idx]
	}
	x := e.r.float()
	idx := len(m.Cum) - 1
	for i, c := range m.Cum {
		if x < c {
			idx = i
			break
		}
	}
	if e.phaseShift != 0 && si.PC == e.prog.dispatchPC {
		idx = (idx + e.phaseShift) % len(m.Targets)
	}
	return m.Targets[idx]
}

// resolveData perturbs the instruction's representative data address per
// dynamic instance: hot-region accesses stay put (locality), random-
// region accesses re-roll (misses), and one in eight becomes a stream
// access (exercising the stream prefetcher).
func (e *Executor) resolveData(si *isa.StaticInstr) isa.Addr {
	const streamRegion = 0x30000000
	a := si.DataAddr
	switch {
	case uint64(a) >= 0x20000000 && uint64(a) < 0x30000000:
		span := e.prog.profile.DataRegionBytes
		if span == 0 {
			span = 1 << 24
		}
		return isa.Addr(0x20000000 + e.r.next()%span&^7)
	case e.r.next()&7 == 0:
		e.streamOff += 8
		return isa.Addr(streamRegion + e.streamOff%(1<<22))
	default:
		return a
	}
}

// Skip fast-forwards n instructions (for simpoint-style region
// selection) without the caller observing them.
func (e *Executor) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		e.Next()
	}
}
