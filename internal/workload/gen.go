package workload

import (
	"fmt"

	"udpsim/internal/isa"
)

// ImageBase is where generated code is laid out. Nonzero so address 0
// can mean "invalid" throughout the simulator.
const ImageBase isa.Addr = 0x400000

// CondMeta describes the dynamic behaviour of one static conditional
// branch; the executor consults it, the frontend never sees it.
type CondMeta struct {
	Behavior CondBehavior
	// Idx is the dense site index of this conditional (0..CondSites-1),
	// assigned at generation. The executor keeps its per-site dynamic
	// state (periodic instance counters, live loop iterations) in flat
	// slices indexed by Idx so the oracle stream never allocates.
	Idx int
	// PTaken is the taken probability for CondBiased / CondIID.
	PTaken float64
	// Period and PatternBits define CondPeriodic: instance i is taken
	// iff bit (i mod Period) of PatternBits is set.
	Period      uint32
	PatternBits uint64
	// Trip is the loop trip count for CondLoop (taken Trip times, then
	// not-taken once). TripJitter > 0 makes the per-entry trip uniform
	// in [Trip-TripJitter, Trip+TripJitter].
	Trip       uint32
	TripJitter uint32
}

// IndirectMeta describes an indirect branch's dynamic target set.
type IndirectMeta struct {
	Targets []isa.Addr
	// Cum is the cumulative probability over Targets (Zipf-skewed).
	Cum []float64
}

// Program is a generated static program image plus the behaviour
// metadata the executor needs.
type Program struct {
	profile Profile
	code    []isa.StaticInstr
	entry   isa.Addr

	conds     map[isa.Addr]*CondMeta
	indirects map[isa.Addr]*IndirectMeta

	// FuncEntries holds every generated function's entry address;
	// FuncEntries[0] is the dispatcher targets' table order.
	FuncEntries []isa.Addr

	// dispatcher bookkeeping for phase rotation
	dispatchPC isa.Addr

	// Static statistics.
	NumCond     int
	NumIndirect int
	NumCalls    int
}

// builder accumulates instructions with backpatching for forward
// branch targets.
type builder struct {
	prog  *Program
	r     *rng
	p     *Profile
	depth int
}

// Generate builds the program image for a profile. Generation is fully
// deterministic in Profile.Seed.
func Generate(p Profile) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	prog := &Program{
		profile:   p,
		conds:     make(map[isa.Addr]*CondMeta),
		indirects: make(map[isa.Addr]*IndirectMeta),
	}
	b := &builder{prog: prog, r: newRNG(p.Seed), p: &p}

	// Assign call-graph levels: function i may only call functions with
	// a strictly greater level, which rules out recursion.
	levels := make([]int, p.Funcs)
	for i := range levels {
		levels[i] = b.r.intn(p.MaxCallDepth)
	}

	// Generate functions in address order. Callee selection needs every
	// function's entry address, so run two passes: first a dry pass to
	// compute sizes? Instead: generate bodies with *symbolic* callee
	// choices resolved after layout. We emit call instructions with a
	// placeholder and record fixups.
	type callFixup struct {
		idx    int // instruction index of the call
		callee int // function id
	}
	var fixups []callFixup

	prog.FuncEntries = make([]isa.Addr, p.Funcs)
	for f := 0; f < p.Funcs; f++ {
		prog.FuncEntries[f] = prog.nextAddr()
		b.depth = 0
		nStmts := b.r.rangeIn(p.StmtsPerFunc[0], p.StmtsPerFunc[1])
		for s := 0; s < nStmts; s++ {
			b.emitStatement(f, levels, func(callee int) {
				fixups = append(fixups, callFixup{idx: len(prog.code) - 1, callee: callee})
			})
		}
		b.emitReturn()
	}

	// Top-level dispatcher: an infinite loop around an indirect call
	// that selects among the DispatchTargets hottest functions — the
	// synthetic stand-in for the server's request-dispatch loop.
	prog.entry = prog.nextAddr()
	b.emitDispatcher()

	// Resolve call targets.
	for _, fx := range fixups {
		prog.code[fx.idx].Target = prog.FuncEntries[fx.callee]
	}

	return prog, nil
}

// NewProgramFromImage rebuilds a Program from an externally captured
// static image (a UDPT2 trace's embedded code layout). The resulting
// program carries no executor metadata — conds/indirects are empty —
// because a trace-driven run takes dynamic behaviour from the recorded
// stream, and the frontend consults only the static fields. Code must
// be dense from ImageBase in layout order (code[i].PC == ImageBase+4i);
// that invariant is what makes InstrAt a single index computation.
func NewProgramFromImage(p Profile, entry isa.Addr, code []isa.StaticInstr) (*Program, error) {
	for i := range code {
		if want := ImageBase + isa.Addr(i*isa.InstrBytes); code[i].PC != want {
			return nil, fmt.Errorf("workload: image not dense at instr %d: pc %#x, want %#x", i, code[i].PC, want)
		}
	}
	return &Program{
		profile:   p,
		code:      code,
		entry:     entry,
		conds:     make(map[isa.Addr]*CondMeta),
		indirects: make(map[isa.Addr]*IndirectMeta),
	}, nil
}

// StaticCode exposes the full static image in layout order (trace
// recording embeds it; inspectors walk it). Callers must not mutate.
func (pr *Program) StaticCode() []isa.StaticInstr { return pr.code }

// MustGenerate is Generate for statically known-good profiles.
func MustGenerate(p Profile) *Program {
	prog, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return prog
}

func (pr *Program) nextAddr() isa.Addr {
	return ImageBase + isa.Addr(len(pr.code)*isa.InstrBytes)
}

// emit appends an instruction, returning its index.
func (pr *Program) emit(class isa.Class, kind isa.BranchKind, target isa.Addr) int {
	pc := pr.nextAddr()
	pr.code = append(pr.code, isa.StaticInstr{
		PC:          pc,
		Class:       class,
		Branch:      kind,
		Target:      target,
		FallThrough: pc + isa.InstrBytes,
	})
	return len(pr.code) - 1
}

// emitStatement generates one statement (possibly nested).
func (b *builder) emitStatement(funcID int, levels []int, onCall func(callee int)) {
	p := b.p
	wTotal := p.WStraight + p.WDiamond + p.WLoop + p.WCall + p.WSwitch
	x := b.r.float() * wTotal
	// Nested statements beyond MaxDepth degrade to straight-line code.
	if b.depth >= p.MaxDepth {
		b.emitStraight()
		return
	}
	switch {
	case x < p.WStraight:
		b.emitStraight()
	case x < p.WStraight+p.WDiamond:
		b.emitDiamond(funcID, levels, onCall)
	case x < p.WStraight+p.WDiamond+p.WLoop:
		b.emitLoop(funcID, levels, onCall)
	case x < p.WStraight+p.WDiamond+p.WLoop+p.WCall:
		b.emitCall(funcID, levels)
		if b.prog.code[len(b.prog.code)-1].Branch == isa.BranchCall {
			onCall(int(b.prog.code[len(b.prog.code)-1].Target)) // placeholder; resolved below
		}
	default:
		b.emitSwitch(funcID, levels, onCall)
	}
}

// emitStraight emits a run of non-branch instructions with the profile's
// load/store mix and data-region assignment.
func (b *builder) emitStraight() {
	n := b.r.rangeIn(b.p.BBLInstrs[0], b.p.BBLInstrs[1])
	for i := 0; i < n; i++ {
		x := b.r.float()
		switch {
		case x < b.p.LoadFrac:
			idx := b.prog.emit(isa.ClassLoad, isa.BranchNone, 0)
			b.prog.code[idx].DataAddr = b.dataAddr()
		case x < b.p.LoadFrac+b.p.StoreFrac:
			idx := b.prog.emit(isa.ClassStore, isa.BranchNone, 0)
			b.prog.code[idx].DataAddr = b.dataAddr()
		case x < b.p.LoadFrac+b.p.StoreFrac+0.05:
			b.prog.emit(isa.ClassMul, isa.BranchNone, 0)
		default:
			b.prog.emit(isa.ClassALU, isa.BranchNone, 0)
		}
	}
}

// dataAddr assigns a static representative data address: either in the
// small hot region (reused, cache-friendly) or the large random region.
func (b *builder) dataAddr() isa.Addr {
	const hotRegion = 0x10000000
	const randRegion = 0x20000000
	if b.r.float() < b.p.DataRandFrac {
		span := b.p.DataRegionBytes
		if span == 0 {
			span = 1 << 24
		}
		return isa.Addr(randRegion + b.r.next()%span&^7)
	}
	return isa.Addr(hotRegion + uint64(b.r.intn(1<<15))&^7)
}

// condMeta draws a conditional behaviour from the profile mixture.
func (b *builder) condMeta() *CondMeta {
	x := b.r.float()
	switch {
	case x < b.p.FracBiased:
		// Biased toward fallthrough: taken with small probability.
		pt := b.p.BiasedP
		if pt == 0 {
			pt = 0.05
		}
		// Half the biased branches are biased-taken instead.
		if b.r.float() < 0.5 {
			pt = 1 - pt
		}
		return &CondMeta{Behavior: CondBiased, PTaken: pt}
	case x < b.p.FracBiased+b.p.FracPeriodic:
		period := uint32(b.r.rangeIn(2, 8))
		return &CondMeta{
			Behavior:    CondPeriodic,
			Period:      period,
			PatternBits: b.r.next() | 1, // ensure at least one taken slot
		}
	default:
		pt := b.p.IIDP
		if pt == 0 {
			pt = 0.5
		}
		return &CondMeta{Behavior: CondIID, PTaken: pt}
	}
}

// emitDiamond generates
//
//	cond-branch (taken -> ELSE)
//	THEN: stmts...; jmp MERGE
//	ELSE: stmts...
//	MERGE: ...
//
// giving the program explicit merge points, the code shape whose
// off-path prefetch usefulness the paper analyzes (Fig. 7).
func (b *builder) emitDiamond(funcID int, levels []int, onCall func(int)) {
	b.depth++
	defer func() { b.depth-- }()

	condIdx := b.prog.emit(isa.ClassBranch, isa.BranchCond, 0)
	b.prog.NumCond++
	b.prog.addCond(b.prog.code[condIdx].PC, b.condMeta())

	// THEN arm.
	b.emitStraight()
	nest := b.p.NestProb
	if nest == 0 {
		nest = 0.3
	}
	if b.depth < b.p.MaxDepth && b.r.float() < nest {
		b.emitStatement(funcID, levels, onCall)
	}
	jmpIdx := b.prog.emit(isa.ClassBranch, isa.BranchUncond, 0)

	// ELSE arm starts here; backpatch the conditional.
	b.prog.code[condIdx].Target = b.prog.nextAddr()
	b.emitStraight()
	if b.depth < b.p.MaxDepth && b.r.float() < nest {
		b.emitStatement(funcID, levels, onCall)
	}

	// MERGE point; backpatch the jump.
	b.prog.code[jmpIdx].Target = b.prog.nextAddr()
	// A short post-merge block guarantees the merge point has real code
	// that both paths execute.
	b.emitStraight()
}

// emitLoop generates
//
//	HEADER: body stmts...
//	        cond-branch (taken -> HEADER)
//
// Trip counts shrink with call-graph level and statement nesting depth:
// loops multiply across nesting AND across call chains (a loop body
// calling a function that loops), so un-damped trip counts make the
// expected instructions-per-dispatch unbounded and the executor can
// disappear into one function for millions of instructions.
func (b *builder) emitLoop(funcID int, levels []int, onCall func(int)) {
	b.depth++
	defer func() { b.depth-- }()

	header := b.prog.nextAddr()
	b.emitStraight()
	nest := b.p.NestProb
	if nest == 0 {
		nest = 0.4
	}
	if b.depth < b.p.MaxDepth && b.r.float() < nest {
		b.emitStatement(funcID, levels, onCall)
	}
	backIdx := b.prog.emit(isa.ClassBranch, isa.BranchCond, header)
	b.prog.NumCond++
	damp := uint(levels[funcID]) + uint(b.depth-1)
	hi := b.p.LoopTrip[1] >> damp
	if hi < b.p.LoopTrip[0] {
		hi = b.p.LoopTrip[0]
	}
	trip := uint32(b.r.rangeIn(b.p.LoopTrip[0], hi))
	meta := &CondMeta{Behavior: CondLoop, Trip: trip}
	if b.p.LoopTripVariable && trip > 2 {
		meta.TripJitter = trip / 2
	}
	b.prog.addCond(b.prog.code[backIdx].PC, meta)
}

// emitCall emits a direct call to a function at a strictly deeper
// call-graph level (no recursion). When no deeper function exists the
// statement degrades to straight-line code.
func (b *builder) emitCall(funcID int, levels []int) {
	myLevel := levels[funcID]
	// Sample a few candidates for a deeper callee.
	for try := 0; try < 8; try++ {
		callee := b.r.intn(len(levels))
		if levels[callee] > myLevel {
			// Target holds the callee *function id* until fixup.
			b.prog.emit(isa.ClassBranch, isa.BranchCall, isa.Addr(callee))
			b.prog.NumCalls++
			return
		}
	}
	b.emitStraight()
}

// emitSwitch generates an indirect jump over K case blocks, each ending
// with a jump to a common merge point — modelling switch statements and
// virtual dispatch within a function.
func (b *builder) emitSwitch(funcID int, levels []int, onCall func(int)) {
	b.depth++
	defer func() { b.depth-- }()

	k := b.r.rangeIn(b.p.SwitchTargets[0], b.p.SwitchTargets[1])
	ijIdx := b.prog.emit(isa.ClassBranch, isa.BranchIndirect, 0)
	b.prog.NumIndirect++

	caseStarts := make([]isa.Addr, k)
	mergeJumps := make([]int, k)
	for c := 0; c < k; c++ {
		caseStarts[c] = b.prog.nextAddr()
		b.emitStraight()
		mergeJumps[c] = b.prog.emit(isa.ClassBranch, isa.BranchUncond, 0)
	}
	merge := b.prog.nextAddr()
	for _, idx := range mergeJumps {
		b.prog.code[idx].Target = merge
	}
	b.emitStraight()

	// Case popularity: Zipf with mild skew so indirect predictors can
	// learn the hot cases but still miss.
	cum := zipfWeights(k, 1.2, b.r)
	b.prog.indirects[b.prog.code[ijIdx].PC] = &IndirectMeta{Targets: caseStarts, Cum: cum}
	b.prog.code[ijIdx].Target = caseStarts[0] // most common target
}

// emitReturn terminates a function.
func (b *builder) emitReturn() {
	b.prog.emit(isa.ClassBranch, isa.BranchReturn, 0)
}

// emitDispatcher generates the top-level request loop:
//
//	LOOP: some work
//	      icall [dispatch over hot functions]
//	      jmp LOOP
func (b *builder) emitDispatcher() {
	loop := b.prog.nextAddr()
	b.emitStraight()
	icIdx := b.prog.emit(isa.ClassBranch, isa.BranchIndirectCall, 0)
	b.prog.NumIndirect++
	b.prog.dispatchPC = b.prog.code[icIdx].PC

	n := b.p.DispatchTargets
	if n <= 0 || n > len(b.prog.FuncEntries) {
		n = len(b.prog.FuncEntries)
	}
	targets := make([]isa.Addr, n)
	copy(targets, b.prog.FuncEntries[:n])
	s := b.p.DispatchZipf
	if s == 0 {
		s = 1.0
	}
	cum := zipfWeights(n, s, b.r)
	b.prog.indirects[b.prog.dispatchPC] = &IndirectMeta{Targets: targets, Cum: cum}
	b.prog.code[icIdx].Target = targets[0]

	b.prog.emit(isa.ClassBranch, isa.BranchUncond, loop)
}

// --- image queries (hot path for the frontend) ---

// Entry returns the program's start address.
func (pr *Program) Entry() isa.Addr { return pr.entry }

// Size returns the number of static instructions.
func (pr *Program) Size() int { return len(pr.code) }

// FootprintBytes returns the code footprint.
func (pr *Program) FootprintBytes() int { return len(pr.code) * isa.InstrBytes }

// padNop is returned for walks outside the image (deep wrong path).
var padNop = isa.StaticInstr{Class: isa.ClassNop}

// InstrAt returns the static instruction at pc. Addresses outside the
// image (reachable only on the wrong path) return a synthetic nop at
// that pc so the frontend can keep walking — and polluting the icache —
// exactly as hardware running into unmapped bytes would.
func (pr *Program) InstrAt(pc isa.Addr) *isa.StaticInstr {
	if pc < ImageBase || uint64(pc-ImageBase)%isa.InstrBytes != 0 {
		n := padNop
		n.PC = pc
		n.FallThrough = pc + isa.InstrBytes
		return &n
	}
	idx := uint64(pc-ImageBase) / isa.InstrBytes
	if idx >= uint64(len(pr.code)) {
		n := padNop
		n.PC = pc
		n.FallThrough = pc + isa.InstrBytes
		return &n
	}
	return &pr.code[idx]
}

// InImage reports whether pc falls inside the generated code.
func (pr *Program) InImage(pc isa.Addr) bool {
	if pc < ImageBase || uint64(pc-ImageBase)%isa.InstrBytes != 0 {
		return false
	}
	return uint64(pc-ImageBase)/isa.InstrBytes < uint64(len(pr.code))
}

// addCond registers a conditional branch site, assigning it the next
// dense site index (used by the executor for slice-backed per-site
// state instead of map lookups on the hot path).
func (pr *Program) addCond(pc isa.Addr, m *CondMeta) {
	m.Idx = len(pr.conds)
	pr.conds[pc] = m
}

// CondSites returns the number of conditional branch sites; CondMeta.Idx
// values are dense in [0, CondSites).
func (pr *Program) CondSites() int { return len(pr.conds) }

// CondMetaAt exposes conditional behaviour (executor + tests).
func (pr *Program) CondMetaAt(pc isa.Addr) *CondMeta { return pr.conds[pc] }

// IndirectMetaAt exposes indirect target sets (executor + tests).
func (pr *Program) IndirectMetaAt(pc isa.Addr) *IndirectMeta { return pr.indirects[pc] }

// Profile returns the generating profile.
func (pr *Program) Profile() Profile { return pr.profile }

// DispatchPC returns the top-level dispatcher's indirect call address.
func (pr *Program) DispatchPC() isa.Addr { return pr.dispatchPC }

// String summarizes the image.
func (pr *Program) String() string {
	return fmt.Sprintf("%s: %d instrs (%d KiB), %d funcs, %d cond, %d indirect, %d calls",
		pr.profile.Name, len(pr.code), pr.FootprintBytes()/1024, len(pr.FuncEntries),
		pr.NumCond, pr.NumIndirect, pr.NumCalls)
}
