// Package workload synthesizes the datacenter applications the paper
// evaluates. The real study traced mysql, postgres, clang, gcc, drupal,
// verilator, mongodb, tomcat, xgboost and mediawiki with DynamoRIO and
// Intel PT; those traces are proprietary and tied to x86 binaries, so
// this package builds the closest synthetic equivalent: a *static
// program image* (basic blocks laid out at real addresses with
// conditional branches, if/else merge diamonds, loops, direct and
// indirect calls) plus an architectural executor that walks it to
// produce the on-path instruction stream.
//
// Crucially, the frontend model predicts over the *same static image*,
// so wrong-path fetch traverses real code: off-path prefetches of
// post-merge-point lines are genuinely useful later, which is the exact
// phenomenon UDP learns (paper Section III-E).
//
// Each profile is calibrated against the per-application characteristics
// the paper reports (Table III and Section III): instruction footprint,
// branch predictability, BTB pressure, code reuse, and merge-point
// density.
package workload

import (
	"fmt"
	"math"
	"strings"
)

// CondBehavior classifies how a conditional branch resolves dynamically.
type CondBehavior uint8

// Conditional branch behaviours.
const (
	// CondBiased branches go one way with high probability; easily
	// predicted by counters.
	CondBiased CondBehavior = iota
	// CondPeriodic branches follow a short repeating pattern; learnable
	// from global/local history (TAGE-friendly).
	CondPeriodic
	// CondIID branches flip an independent coin each instance; the
	// hardest case, approximating data-dependent branches (xgboost's
	// decision trees).
	CondIID
	// CondLoop branches are loop back-edges with a trip count.
	CondLoop
)

func (b CondBehavior) String() string {
	switch b {
	case CondBiased:
		return "biased"
	case CondPeriodic:
		return "periodic"
	case CondIID:
		return "iid"
	case CondLoop:
		return "loop"
	default:
		return fmt.Sprintf("behavior(%d)", uint8(b))
	}
}

// Profile parameterizes the synthetic application generator.
type Profile struct {
	Name string
	// Seed drives both image generation and execution randomness.
	Seed uint64

	// --- code footprint ---

	// Funcs is the number of generated functions.
	Funcs int
	// StmtsPerFunc bounds the number of top-level statements per
	// function body [min,max].
	StmtsPerFunc [2]int
	// BBLInstrs bounds straight-line basic block length [min,max].
	BBLInstrs [2]int

	// --- control-flow statement mix (weights, normalized) ---

	WStraight float64 // plain basic block
	WDiamond  float64 // if/else with merge point
	WLoop     float64 // counted loop
	WCall     float64 // direct call to a deeper function
	WSwitch   float64 // indirect jump over case blocks with merge

	// MaxDepth bounds statement nesting within a function.
	MaxDepth int
	// NestProb is the probability that a diamond arm or loop body
	// contains a nested statement (deep nesting makes wrong paths
	// diverge into code the correct path never reaches — decision-tree
	// behaviour).
	NestProb float64
	// MaxCallDepth bounds the static call-graph depth.
	MaxCallDepth int

	// --- branch behaviour mixture for diamond conditions ---

	FracBiased   float64 // probability a cond is CondBiased
	FracPeriodic float64 // probability a cond is CondPeriodic
	// remainder is CondIID
	BiasedP float64 // taken probability of biased branches (~0.05..0.1 toward fallthrough)
	IIDP    float64 // taken probability of iid branches (~0.5)

	// --- loops ---

	LoopTrip [2]int
	// LoopTripVariable makes trip counts vary per loop entry
	// (defeating the loop predictor).
	LoopTripVariable bool

	// --- indirect control flow ---

	SwitchTargets [2]int // case-count range of switch statements
	// DispatchTargets is how many functions the top-level dispatcher
	// indirect call selects among.
	DispatchTargets int
	// DispatchZipf is the skew of the dispatcher's function popularity
	// (higher = more reuse of few hot functions).
	DispatchZipf float64
	// DispatchSequential makes the dispatcher cycle through its targets
	// round-robin instead of sampling: every pass touches the whole
	// footprint in the same order (verilator-style generated evaluation
	// code).
	DispatchSequential bool

	// --- data side ---

	LoadFrac  float64 // fraction of straight-line instrs that are loads
	StoreFrac float64
	// DataRandFrac is the fraction of loads touching a large random
	// region (dcache misses); the rest hit small hot/stream regions.
	DataRandFrac float64
	// DataRegionBytes is the size of the random data region.
	DataRegionBytes uint64

	// --- phases ---

	// PhaseLen rotates the dispatcher's hot set every PhaseLen dynamic
	// instructions (0 = single phase). Exercises UFTQ's always-on
	// adaptation.
	PhaseLen uint64
}

// Validate reports obviously broken profiles.
func (p *Profile) Validate() error {
	if p.Funcs <= 0 {
		return fmt.Errorf("workload %s: Funcs must be positive", p.Name)
	}
	if p.StmtsPerFunc[0] <= 0 || p.StmtsPerFunc[1] < p.StmtsPerFunc[0] {
		return fmt.Errorf("workload %s: bad StmtsPerFunc %v", p.Name, p.StmtsPerFunc)
	}
	if p.BBLInstrs[0] <= 0 || p.BBLInstrs[1] < p.BBLInstrs[0] {
		return fmt.Errorf("workload %s: bad BBLInstrs %v", p.Name, p.BBLInstrs)
	}
	if w := p.WStraight + p.WDiamond + p.WLoop + p.WCall + p.WSwitch; w <= 0 {
		return fmt.Errorf("workload %s: statement weights sum to %v", p.Name, w)
	}
	if p.FracBiased+p.FracPeriodic > 1 {
		return fmt.Errorf("workload %s: branch behaviour fractions exceed 1", p.Name)
	}
	if p.DispatchTargets > p.Funcs {
		return fmt.Errorf("workload %s: DispatchTargets %d exceeds Funcs %d", p.Name, p.DispatchTargets, p.Funcs)
	}
	if p.LoopTrip[0] <= 0 || p.LoopTrip[1] < p.LoopTrip[0] {
		return fmt.Errorf("workload %s: bad LoopTrip %v", p.Name, p.LoopTrip)
	}
	if p.SwitchTargets[0] < 2 || p.SwitchTargets[1] < p.SwitchTargets[0] {
		return fmt.Errorf("workload %s: bad SwitchTargets %v", p.Name, p.SwitchTargets)
	}
	return nil
}

// Key returns the canonical, collision-free serialization of every
// profile field. It is the synthetic half of the workload-source cache
// identity (sim.ProfileKey delegates here), so its byte layout is
// load-bearing: persisted result-store entries are keyed on it. Change
// it only with a store migration.
func (p Profile) Key() string {
	var b strings.Builder
	b.Grow(256)
	fmt.Fprintf(&b, "name=%s|seed=%d|funcs=%d|stmts=%d-%d|bbl=%d-%d",
		p.Name, p.Seed, p.Funcs,
		p.StmtsPerFunc[0], p.StmtsPerFunc[1], p.BBLInstrs[0], p.BBLInstrs[1])
	fmt.Fprintf(&b, "|wmix=%g/%g/%g/%g/%g|depth=%d|nest=%g|calldepth=%d",
		p.WStraight, p.WDiamond, p.WLoop, p.WCall, p.WSwitch,
		p.MaxDepth, p.NestProb, p.MaxCallDepth)
	fmt.Fprintf(&b, "|frac=%g/%g|biasp=%g|iidp=%g",
		p.FracBiased, p.FracPeriodic, p.BiasedP, p.IIDP)
	fmt.Fprintf(&b, "|trip=%d-%d,var=%t|sw=%d-%d|disp=%d,zipf=%g,seq=%t",
		p.LoopTrip[0], p.LoopTrip[1], p.LoopTripVariable,
		p.SwitchTargets[0], p.SwitchTargets[1],
		p.DispatchTargets, p.DispatchZipf, p.DispatchSequential)
	fmt.Fprintf(&b, "|load=%g|store=%g|rand=%g|region=%d|phase=%d",
		p.LoadFrac, p.StoreFrac, p.DataRandFrac, p.DataRegionBytes, p.PhaseLen)
	return b.String()
}

// rng is a SplitMix64 deterministic generator; the generator and the
// executor each derive independent streams from Profile.Seed.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeIn returns a uniform int in [lo, hi].
func (r *rng) rangeIn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// zipfWeights precomputes a Zipf(s) popularity distribution over n items
// as a cumulative table for sampling.
func zipfWeights(n int, s float64, r *rng) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w[i] = 1.0 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	cum := 0.0
	for i := 0; i < n; i++ {
		cum += w[i] / sum
		w[i] = cum
	}
	// Rank-to-function scattering is applied by the caller.
	_ = r
	return w
}
