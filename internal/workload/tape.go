package workload

import (
	"fmt"
	"sync"

	"udpsim/internal/isa"
)

// A Tape records the architectural (on-path) instruction stream of one
// executor exactly once and replays it to any number of readers — the
// substrate of batched lockstep simulation, where K config variants
// sweep over one workload image and would otherwise each re-execute the
// identical deterministic stream. Records live in fixed-size chunks;
// chunks every reader has fully moved past (beyond any possible rewind)
// are released, so memory stays proportional to the cursor spread of
// the reader group rather than the run length.
//
// Readers must all be created (Reader) before any of them starts
// consuming; a reader joining after trimming has begun would start
// inside released history.
const (
	tapeChunkShift = 14
	tapeChunkSize  = 1 << tapeChunkShift // instructions per chunk
	tapeChunkMask  = tapeChunkSize - 1

	// tapeRewindWindow is how far below its high-water mark a reader may
	// re-read (a frontend recovery rewinds its oracle cursor). It must be
	// at least frontend's oracleWindow (1<<13); workload cannot import
	// frontend, so the bound is restated here and pinned by a test in
	// the frontend package against the exported alias below.
	tapeRewindWindow = 1 << 13
)

// TapeRewindWindow exports the reader retention bound for cross-package
// consistency tests (it must cover frontend.OracleWindow).
const TapeRewindWindow = tapeRewindWindow

// Tape is the shared recording. All mutable state is guarded by mu;
// readers touch it only on chunk boundaries (once per 16Ki
// instructions), so contention between lockstepped machines is
// negligible.
type Tape struct {
	mu      sync.Mutex
	src     Stream
	chunks  [][]isa.DynInstr // chunks[c] covers [c<<shift, (c+1)<<shift); nil once trimmed
	trimmed int              // chunks below this index are released
	readers []*TapeReader
}

// NewTape starts a tape over a fresh executor for (prog, seedSalt) —
// the same stream NewExecutor(prog, seedSalt) would produce.
func NewTape(prog *Program, seedSalt uint64) *Tape {
	return NewTapeFromStream(NewExecutor(prog, seedSalt))
}

// NewTapeFromStream starts a tape over any workload stream — how
// trace-driven cells enter the batched lockstep path. The tape takes
// ownership: nothing else may consume src.
func NewTapeFromStream(src Stream) *Tape {
	return &Tape{src: src}
}

// Reader registers a new reader at position 0. Must be called before
// any reader consumes far enough to trim (enforced by panic).
func (t *Tape) Reader() *TapeReader {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.trimmed > 0 {
		panic("workload: Tape.Reader after trimming began; create all readers up front")
	}
	r := &TapeReader{t: t}
	t.readers = append(t.readers, r)
	return r
}

// EnsureAhead pre-records the stream through absolute position i, so
// subsequent At calls up to i allocate nothing (the zero-alloc step
// invariant: batch schedulers call this once per scheduling slice,
// outside the measured cycle loop).
func (t *Tape) EnsureAhead(i uint64) {
	t.mu.Lock()
	t.extendLocked(int(i >> tapeChunkShift))
	t.mu.Unlock()
}

// extendLocked records chunks through index c.
func (t *Tape) extendLocked(c int) {
	for len(t.chunks) <= c {
		chunk := make([]isa.DynInstr, tapeChunkSize)
		for j := range chunk {
			chunk[j] = t.src.Next()
		}
		t.chunks = append(t.chunks, chunk)
	}
}

// maybeTrimLocked releases chunks no live reader can reach again: every
// position below min over readers of (high-water − rewind window).
func (t *Tape) maybeTrimLocked() {
	lo := ^uint64(0)
	for _, r := range t.readers {
		if r.closed {
			continue
		}
		var m uint64
		if r.hw > tapeRewindWindow {
			m = r.hw - tapeRewindWindow
		}
		if m < lo {
			lo = m
		}
	}
	if lo == ^uint64(0) {
		return // no live readers; the whole tape is about to be dropped
	}
	for c := t.trimmed; c < int(lo>>tapeChunkShift); c++ {
		t.chunks[c] = nil
		t.trimmed = c + 1
	}
}

// LiveChunks reports how many chunks are currently resident (for tests
// asserting that trimming bounds memory).
func (t *Tape) LiveChunks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.chunks) - t.trimmed
}

// A TapeReader replays the tape to one consumer. It implements both the
// sequential frontend.InstrSource protocol (Next) and random access
// (At), which the oracle stream uses directly to avoid re-buffering
// records it can already address.
type TapeReader struct {
	t         *Tape
	chunkBase uint64 // absolute position of chunk[0]
	chunk     []isa.DynInstr
	pos       uint64 // next sequential position (Next)
	hw        uint64 // high-water: 1 + max position observed at a chunk switch; guarded by t.mu
	closed    bool   // guarded by t.mu
}

// At returns the record at absolute position i. The fast path is a
// bounds check into the current chunk; crossing a chunk boundary (in
// either direction — recoveries rewind) takes the tape lock. Reading
// below high-water − window panics: that history may be trimmed.
func (r *TapeReader) At(i uint64) isa.DynInstr {
	if off := i - r.chunkBase; off < uint64(len(r.chunk)) {
		return r.chunk[off]
	}
	return r.slowAt(i)
}

func (r *TapeReader) slowAt(i uint64) isa.DynInstr {
	t := r.t
	t.mu.Lock()
	if r.hw > tapeRewindWindow && i < r.hw-tapeRewindWindow {
		hw := r.hw
		t.mu.Unlock()
		panic(fmt.Sprintf("workload: tape rewind beyond window (want %d, high-water %d)", i, hw))
	}
	c := int(i >> tapeChunkShift)
	t.extendLocked(c)
	if i >= r.hw {
		r.hw = i + 1
	}
	chunk := t.chunks[c]
	r.chunkBase = uint64(c) << tapeChunkShift
	r.chunk = chunk
	t.maybeTrimLocked()
	t.mu.Unlock()
	return chunk[i&tapeChunkMask]
}

// Next returns the record at the sequential cursor and advances it
// (the frontend.InstrSource protocol).
func (r *TapeReader) Next() isa.DynInstr {
	d := r.At(r.pos)
	r.pos++
	return d
}

// Close retires the reader: its high-water mark no longer holds back
// trimming. Safe to call more than once.
func (r *TapeReader) Close() {
	t := r.t
	t.mu.Lock()
	if !r.closed {
		r.closed = true
		t.maybeTrimLocked()
	}
	t.mu.Unlock()
}
