package workload

import (
	"testing"

	"udpsim/internal/isa"
)

// TestTapeMatchesExecutor proves a tape replays the executor's stream
// bit-for-bit to several interleaved readers, including a straggler
// that stays a full rewind window behind the leader.
func TestTapeMatchesExecutor(t *testing.T) {
	prof := MustByName("mysql")
	prof.Funcs = 40
	prof.DispatchTargets = 30
	prog, err := Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3 * tapeChunkSize
	ref := NewExecutor(prog, 42)
	want := make([]DynRecord, n)
	for i := range want {
		d := ref.Next()
		want[i] = DynRecord{Seq: d.Seq, PC: d.Static.PC, Target: d.Target, Taken: d.Taken, Data: d.DataAddr}
	}

	tape := NewTape(prog, 42)
	lead := tape.Reader()
	lag := tape.Reader()
	lagPos := uint64(0)
	for i := uint64(0); i < n; i++ {
		d := lead.At(i)
		if got := (DynRecord{Seq: d.Seq, PC: d.Static.PC, Target: d.Target, Taken: d.Taken, Data: d.DataAddr}); got != want[i] {
			t.Fatalf("lead record %d: got %+v want %+v", i, got, want[i])
		}
		// The lagging reader trails by the full rewind window.
		if i >= tapeRewindWindow {
			d := lag.At(lagPos)
			if d.Seq != want[lagPos].Seq || d.Target != want[lagPos].Target {
				t.Fatalf("lag record %d mismatch", lagPos)
			}
			lagPos++
		}
	}
	// Re-read within the window (a recovery rewind).
	d := lead.At(n - tapeRewindWindow)
	if d.Seq != want[n-tapeRewindWindow].Seq {
		t.Fatal("rewind within window returned wrong record")
	}
}

// DynRecord flattens a DynInstr for comparison (Static is a pointer).
type DynRecord struct {
	Seq    uint64
	PC     isa.Addr
	Target isa.Addr
	Taken  bool
	Data   isa.Addr
}

// TestTapeTrimsBehindReaders asserts released history: once every
// reader has moved far past a chunk, it is dropped, so resident memory
// tracks the reader spread rather than the run length.
func TestTapeTrimsBehindReaders(t *testing.T) {
	prof := MustByName("mysql")
	prof.Funcs = 40
	prof.DispatchTargets = 30
	prog, err := Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	tape := NewTape(prog, 1)
	a := tape.Reader()
	b := tape.Reader()
	const chunks = 16
	for i := uint64(0); i < chunks*tapeChunkSize; i += tapeChunkSize / 2 {
		a.At(i)
		b.At(i)
	}
	if live := tape.LiveChunks(); live > 3 {
		t.Errorf("tape retains %d chunks with close readers, want <= 3", live)
	}
	// A closed reader stops holding history back.
	b.Close()
	a.At((chunks + 8) * tapeChunkSize)
	if live := tape.LiveChunks(); live > 3 {
		t.Errorf("tape retains %d chunks after Close, want <= 3", live)
	}
}

// TestTapeRewindBeyondWindowPanics pins the trimming contract: reading
// below high-water minus the rewind window is a modelling bug.
func TestTapeRewindBeyondWindowPanics(t *testing.T) {
	prof := MustByName("mysql")
	prof.Funcs = 40
	prof.DispatchTargets = 30
	prog, err := Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	tape := NewTape(prog, 1)
	r := tape.Reader()
	r.At(4 * tapeChunkSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rewind beyond window")
		}
	}()
	r.At(0)
}
