package workload

import (
	"strings"
	"testing"
)

func tinySourceProfile() Profile {
	p := MustByName("postgres")
	p.Funcs = 30
	p.DispatchTargets = 20
	return p
}

func TestSyntheticSource(t *testing.T) {
	p := tinySourceProfile()
	s := NewSyntheticSource(p)
	if s.Name() != p.Name {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Key() != "profile:"+p.Key() {
		t.Errorf("Key = %q", s.Key())
	}
	img1, err := s.Image()
	if err != nil {
		t.Fatal(err)
	}
	img2, _ := s.Image()
	if img1 != img2 {
		t.Error("Image not memoized")
	}
	st, err := s.Stream(3)
	if err != nil {
		t.Fatal(err)
	}
	live := NewExecutor(MustGenerate(p), 3)
	for i := 0; i < 5_000; i++ {
		a, b := st.Next(), live.Next()
		if a.PC() != b.PC() || a.Taken != b.Taken || a.Target != b.Target {
			t.Fatalf("stream mismatch at %d", i)
		}
	}
}

func TestSourceRegistry(t *testing.T) {
	s := NewSyntheticSource(tinySourceProfile())
	RegisterSource(s)
	if got, ok := SourceByKey(s.Key()); !ok || got != Source(s) {
		t.Errorf("SourceByKey(%q) = %v, %t", s.Key(), got, ok)
	}
	if got, ok := SourceByName(s.Name()); !ok || got != Source(s) {
		t.Errorf("SourceByName(%q) = %v, %t", s.Name(), got, ok)
	}
	if _, ok := SourceByKey("trace:definitely-not-registered"); ok {
		t.Error("unregistered key resolved")
	}
	if MustSourceByKey(s.Key()) != Source(s) {
		t.Error("MustSourceByKey mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSourceByKey of an unknown key did not panic")
		}
	}()
	MustSourceByKey("trace:definitely-not-registered")
}

// TestTapeFromStreamMatchesNewTape pins the tape generalization: a tape
// over an explicit executor stream replays exactly what NewTape records.
func TestTapeFromStreamMatchesNewTape(t *testing.T) {
	p := tinySourceProfile()
	prog := MustGenerate(p)
	a := NewTape(prog, 5).Reader()
	b := NewTapeFromStream(NewExecutor(prog, 5)).Reader()
	for i := 0; i < 40_000; i++ { // crosses a tape chunk boundary
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("tape streams diverge at %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestProfileKeyDistinguishes(t *testing.T) {
	p := tinySourceProfile()
	if p.Key() != p.Key() {
		t.Fatal("Key not deterministic")
	}
	if !strings.Contains(p.Key(), "name="+p.Name) {
		t.Errorf("Key %q missing the profile name", p.Key())
	}
	q := p
	q.Seed++
	if p.Key() == q.Key() {
		t.Error("seed mutation aliases the profile key")
	}
	r := p
	r.WSwitch += 0.01
	if p.Key() == r.Key() {
		t.Error("mix mutation aliases the profile key")
	}
}

func TestNewProgramFromImageRejectsSparseCode(t *testing.T) {
	p := tinySourceProfile()
	code := MustGenerate(p).StaticCode()
	sparse := append(code[:0:0], code...)
	sparse[3].PC += 4 // break density
	if _, err := NewProgramFromImage(p, ImageBase, sparse); err == nil {
		t.Error("sparse code accepted")
	}
	if _, err := NewProgramFromImage(p, ImageBase, code); err != nil {
		t.Errorf("valid code rejected: %v", err)
	}
}
