package workload

// This file defines the synthetic stand-ins for the paper's 10
// datacenter applications. Knob choices follow the per-application
// characterization in Section III and Table III of the paper:
//
//   - footprint (Funcs × body size) sets icache/BTB pressure,
//   - FracBiased/FracPeriodic vs. IID sets branch misprediction rate,
//   - DispatchZipf sets code reuse (flatter = larger live footprint),
//   - WDiamond sets merge-point density (off-path prefetch usefulness),
//   - WLoop + LoopTrip set loop-predictor-friendly behaviour.
//
// The absolute IPCs will not match a real Sunny Cove, but the relative
// per-app characters — xgboost as a sea of unpredictable branches with
// tiny reuse, verilator as a huge but predictable footprint, postgres as
// a modest, well-behaved server — are reproduced, which is what the
// paper's figures exercise.

// Names lists the evaluated applications in the paper's plotting order.
var Names = []string{
	"mysql", "postgres", "clang", "gcc", "drupal",
	"verilator", "mongodb", "tomcat", "xgboost", "mediawiki",
}

// ExtraNames lists the grown scenario corpus beyond the paper's 10
// apps: stress profiles for regimes the paper's suite underweights.
// They are deliberately NOT in Names/All() — figure and descriptor
// defaults stay pinned to the paper's suite — but resolve through
// ByName like any other profile.
var ExtraNames = []string{"interpreter-dispatch", "jit-churn", "rpc-storm"}

// ByName returns the profile for one application (paper suite or
// extended corpus).
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range Extras() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// MustByName returns the profile for name, panicking if unknown.
func MustByName(name string) Profile {
	p, ok := ByName(name)
	if !ok {
		panic("workload: unknown application " + name)
	}
	return p
}

// All returns the 10 application profiles in plotting order.
func All() []Profile {
	return []Profile{
		mysql(), postgres(), clang(), gcc(), drupal(),
		verilator(), mongodb(), tomcat(), xgboost(), mediawiki(),
	}
}

// Extras returns the extended corpus profiles in ExtraNames order.
func Extras() []Profile {
	return []Profile{interpreterDispatch(), jitChurn(), rpcStorm()}
}

// base returns knobs shared by the server-class workloads.
func base(name string, seed uint64) Profile {
	return Profile{
		Name:            name,
		Seed:            seed,
		StmtsPerFunc:    [2]int{5, 11},
		BBLInstrs:       [2]int{6, 14},
		WStraight:       0.40,
		WDiamond:        0.25,
		WLoop:           0.12,
		WCall:           0.15,
		WSwitch:         0.08,
		MaxDepth:        3,
		MaxCallDepth:    6,
		FracBiased:      0.60,
		FracPeriodic:    0.25,
		BiasedP:         0.06,
		IIDP:            0.5,
		LoopTrip:        [2]int{3, 24},
		SwitchTargets:   [2]int{2, 6},
		DispatchZipf:    1.1,
		LoadFrac:        0.25,
		StoreFrac:       0.12,
		DataRandFrac:    0.15,
		DataRegionBytes: 1 << 24,
	}
}

func mysql() Profile {
	p := base("mysql", 0x11aa01)
	p.Funcs = 1250
	p.DispatchTargets = 950
	p.FracBiased = 0.62
	p.FracPeriodic = 0.24
	p.DispatchZipf = 0.8
	return p
}

func postgres() Profile {
	p := base("postgres", 0x11aa02)
	p.Funcs = 1100
	p.DispatchTargets = 820
	// Most predictable of the servers: higher bias, more periodic.
	p.FracBiased = 0.68
	p.FracPeriodic = 0.24
	p.DispatchZipf = 0.95
	return p
}

func clang() Profile {
	p := base("clang", 0x11aa03)
	// Large compiler footprint, visitor-style recursion replaced by
	// deep call chains; good predictability lets FDIP run far ahead.
	p.Funcs = 2400
	p.DispatchTargets = 1700
	p.StmtsPerFunc = [2]int{6, 13}
	p.FracBiased = 0.66
	p.FracPeriodic = 0.24
	p.DispatchZipf = 0.5
	p.MaxCallDepth = 8
	return p
}

func gcc() Profile {
	p := base("gcc", 0x11aa04)
	p.Funcs = 2700
	p.DispatchTargets = 2000
	p.StmtsPerFunc = [2]int{6, 13}
	p.FracBiased = 0.62
	p.FracPeriodic = 0.24
	p.DispatchZipf = 0.45
	p.MaxCallDepth = 8
	return p
}

func drupal() Profile {
	p := base("drupal", 0x11aa05)
	// PHP request processing: flat reuse, many small handlers, more
	// indirect dispatch.
	p.Funcs = 1500
	p.DispatchTargets = 1150
	p.WSwitch = 0.12
	p.WCall = 0.17
	p.FracBiased = 0.55
	p.FracPeriodic = 0.22
	p.DispatchZipf = 0.6
	return p
}

func verilator() Profile {
	p := base("verilator", 0x11aa06)
	// Generated RTL evaluation code: an enormous, almost straight-line
	// footprint with highly biased branches and big basic blocks; low
	// misprediction but every pass touches megabytes of code.
	p.Funcs = 1700
	p.DispatchTargets = 1700
	p.StmtsPerFunc = [2]int{10, 18}
	p.BBLInstrs = [2]int{24, 48}
	p.WStraight = 0.72
	p.WDiamond = 0.10
	p.WLoop = 0.04
	p.WCall = 0.10
	p.WSwitch = 0.04
	p.FracBiased = 0.94
	p.FracPeriodic = 0.05
	p.BiasedP = 0.02
	p.DispatchSequential = true // identical evaluation pass every time
	p.LoadFrac = 0.22
	p.DataRandFrac = 0.05 // compute-heavy, dcache-friendly
	return p
}

func mongodb() Profile {
	p := base("mongodb", 0x11aa07)
	// Document database: moderate footprint but frequent resteers from
	// indirect-heavy dispatch and less biased branches.
	p.Funcs = 1400
	p.DispatchTargets = 1050
	p.WSwitch = 0.13
	p.FracBiased = 0.50
	p.FracPeriodic = 0.22
	p.IIDP = 0.45
	p.DispatchZipf = 0.65
	return p
}

func tomcat() Profile {
	p := base("tomcat", 0x11aa08)
	// JVM server: virtual dispatch everywhere, moderate reuse.
	p.Funcs = 1300
	p.DispatchTargets = 980
	p.WSwitch = 0.14
	p.WCall = 0.18
	p.FracBiased = 0.56
	p.FracPeriodic = 0.22
	p.DispatchZipf = 0.75
	return p
}

func xgboost() Profile {
	p := base("xgboost", 0x11aa09)
	// MB-sized generated decision-tree code: a sea of data-dependent
	// conditional branches, tiny basic blocks, almost no reuse, and
	// near-zero predictability — the paper's pathological case (90% of
	// time on the off-path, optimal FTQ of 12).
	p.Funcs = 800
	p.DispatchTargets = 760
	p.StmtsPerFunc = [2]int{6, 12}
	p.BBLInstrs = [2]int{3, 6}
	p.WStraight = 0.18
	p.WDiamond = 0.68
	p.WLoop = 0.02
	p.WCall = 0.08
	p.WSwitch = 0.04
	p.MaxDepth = 6
	p.NestProb = 0.85
	p.FracBiased = 0.12
	p.FracPeriodic = 0.08
	p.IIDP = 0.5
	p.DispatchZipf = 0.2
	p.LoadFrac = 0.30
	p.DataRandFrac = 0.35
	return p
}

func mediawiki() Profile {
	p := base("mediawiki", 0x11aa10)
	p.Funcs = 1350
	p.DispatchTargets = 1000
	p.WSwitch = 0.11
	p.FracBiased = 0.54
	p.FracPeriodic = 0.22
	p.DispatchZipf = 0.6
	return p
}

// --- extended corpus (ExtraNames) ---

func interpreterDispatch() Profile {
	// Bytecode interpreter main loop: a small-ish footprint dominated by
	// one indirect jump per "bytecode" over many case handlers, tiny
	// basic blocks, and poor indirect predictability — the BTB/IBTB
	// stress regime the paper's server suite only brushes (tomcat).
	p := base("interpreter-dispatch", 0x11aa21)
	p.Funcs = 400
	p.DispatchTargets = 64
	p.StmtsPerFunc = [2]int{4, 9}
	p.BBLInstrs = [2]int{4, 8}
	p.WStraight = 0.30
	p.WDiamond = 0.18
	p.WLoop = 0.10
	p.WCall = 0.10
	p.WSwitch = 0.32
	p.SwitchTargets = [2]int{8, 32}
	p.FracBiased = 0.35
	p.FracPeriodic = 0.25
	p.DispatchZipf = 0.9
	return p
}

func jitChurn() Profile {
	// JIT-compiled workload with phase-changing code footprint: a large
	// flat function population whose hot set rotates every ~120k
	// instructions, defeating any predictor that assumes a stationary
	// working set (the UFTQ always-on-adaptation stressor).
	p := base("jit-churn", 0x11aa22)
	p.Funcs = 2000
	p.DispatchTargets = 1500
	p.DispatchZipf = 0.4
	p.PhaseLen = 120_000
	p.FracBiased = 0.55
	p.FracPeriodic = 0.20
	p.LoopTripVariable = true
	return p
}

func rpcStorm() Profile {
	// Microservice-style RPC handling: short handler bodies fanning into
	// deep call chains, so the RAS and call-dense BTB behaviour dominate
	// and the frontend resteers on returns far more than the server
	// suite average.
	p := base("rpc-storm", 0x11aa23)
	p.Funcs = 1800
	p.DispatchTargets = 1300
	p.StmtsPerFunc = [2]int{3, 7}
	p.WStraight = 0.30
	p.WDiamond = 0.20
	p.WLoop = 0.08
	p.WCall = 0.32
	p.WSwitch = 0.10
	p.MaxCallDepth = 12
	p.DispatchZipf = 0.7
	return p
}
