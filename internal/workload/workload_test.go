package workload

import (
	"testing"
	"testing/quick"

	"udpsim/internal/isa"
)

func tinyProfile() Profile {
	p := MustByName("mysql")
	p.Funcs = 40
	p.DispatchTargets = 30
	return p
}

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(All()) != 10 || len(Names) != 10 {
		t.Errorf("expected the paper's 10 applications")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = (%v, %v)", name, p.Name, ok)
		}
	}
	if _, ok := ByName("nginx"); ok {
		t.Error("unknown workload resolved")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustByName("nope")
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	mk := func(mut func(*Profile)) Profile {
		p := tinyProfile()
		mut(&p)
		return p
	}
	bad := []Profile{
		mk(func(p *Profile) { p.Funcs = 0 }),
		mk(func(p *Profile) { p.StmtsPerFunc = [2]int{0, 5} }),
		mk(func(p *Profile) { p.StmtsPerFunc = [2]int{5, 2} }),
		mk(func(p *Profile) { p.BBLInstrs = [2]int{0, 4} }),
		mk(func(p *Profile) { p.WStraight, p.WDiamond, p.WLoop, p.WCall, p.WSwitch = 0, 0, 0, 0, 0 }),
		mk(func(p *Profile) { p.FracBiased, p.FracPeriodic = 0.8, 0.5 }),
		mk(func(p *Profile) { p.DispatchTargets = p.Funcs + 1 }),
		mk(func(p *Profile) { p.LoopTrip = [2]int{0, 4} }),
		mk(func(p *Profile) { p.SwitchTargets = [2]int{1, 4} }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
		if _, err := Generate(p); err == nil {
			t.Errorf("Generate accepted bad profile %d", i)
		}
	}
}

func TestGenerationDeterminism(t *testing.T) {
	p := tinyProfile()
	a := MustGenerate(p)
	b := MustGenerate(p)
	if a.Size() != b.Size() || a.Entry() != b.Entry() {
		t.Fatalf("non-deterministic image: %d/%v vs %d/%v", a.Size(), a.Entry(), b.Size(), b.Entry())
	}
	for i := 0; i < a.Size(); i++ {
		pc := ImageBase + isa.Addr(i*isa.InstrBytes)
		ia, ib := a.InstrAt(pc), b.InstrAt(pc)
		if *ia != *ib {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestImageStructure(t *testing.T) {
	prog := MustGenerate(tinyProfile())
	if prog.Size() == 0 {
		t.Fatal("empty image")
	}
	if prog.NumCond == 0 || prog.NumIndirect == 0 || prog.NumCalls == 0 {
		t.Errorf("missing control flow: %s", prog)
	}
	if len(prog.FuncEntries) != 40 {
		t.Errorf("FuncEntries = %d", len(prog.FuncEntries))
	}
	// Every branch's metadata must be resolvable and every direct
	// branch target must be inside the image.
	for i := 0; i < prog.Size(); i++ {
		si := prog.InstrAt(ImageBase + isa.Addr(i*isa.InstrBytes))
		switch si.Branch {
		case isa.BranchCond:
			if prog.CondMetaAt(si.PC) == nil {
				t.Fatalf("cond at %v has no behaviour metadata", si.PC)
			}
			if !prog.InImage(si.Target) {
				t.Fatalf("cond target %v outside image", si.Target)
			}
		case isa.BranchUncond, isa.BranchCall:
			if !prog.InImage(si.Target) {
				t.Fatalf("%v target %v outside image", si.Branch, si.Target)
			}
		case isa.BranchIndirect, isa.BranchIndirectCall:
			m := prog.IndirectMetaAt(si.PC)
			if m == nil || len(m.Targets) == 0 {
				t.Fatalf("indirect at %v has no targets", si.PC)
			}
			for _, tg := range m.Targets {
				if !prog.InImage(tg) {
					t.Fatalf("indirect target %v outside image", tg)
				}
			}
			if len(m.Cum) != len(m.Targets) {
				t.Fatalf("cumulative table mismatch at %v", si.PC)
			}
		}
	}
}

func TestInstrAtOffImage(t *testing.T) {
	prog := MustGenerate(tinyProfile())
	end := ImageBase + isa.Addr(prog.Size()*isa.InstrBytes)
	si := prog.InstrAt(end + 0x100)
	if si.Class != isa.ClassNop || si.IsBranch() {
		t.Errorf("off-image instr = %+v", si)
	}
	if si.FallThrough != end+0x104 {
		t.Errorf("off-image fallthrough = %v", si.FallThrough)
	}
	if prog.InImage(end) || prog.InImage(0) || prog.InImage(ImageBase+1) {
		t.Error("InImage accepts out-of-image or misaligned addresses")
	}
	if !prog.InImage(ImageBase) {
		t.Error("InImage rejects the image base")
	}
}

func TestExecutorDeterminism(t *testing.T) {
	prog := MustGenerate(tinyProfile())
	a, b := NewExecutor(prog, 7), NewExecutor(prog, 7)
	for i := 0; i < 20_000; i++ {
		da, db := a.Next(), b.Next()
		if da.PC() != db.PC() || da.Taken != db.Taken || da.Target != db.Target || da.DataAddr != db.DataAddr {
			t.Fatalf("divergence at %d: %+v vs %+v", i, da, db)
		}
	}
}

func TestExecutorSaltsDiffer(t *testing.T) {
	prog := MustGenerate(tinyProfile())
	a, b := NewExecutor(prog, 1), NewExecutor(prog, 2)
	same := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		da, db := a.Next(), b.Next()
		if da.PC() == db.PC() {
			same++
		}
	}
	if same == n {
		t.Error("different salts produced identical streams")
	}
}

// TestExecutorControlFlowLegal checks the fundamental architectural
// invariant: every instruction's resolved next PC is either its
// fall-through or a legal target for its kind.
func TestExecutorControlFlowLegal(t *testing.T) {
	prog := MustGenerate(tinyProfile())
	e := NewExecutor(prog, 0)
	prev := isa.DynInstr{}
	for i := 0; i < 50_000; i++ {
		d := e.Next()
		if i > 0 && prev.NextPC() != d.PC() {
			t.Fatalf("instr %d at %v does not follow %v (next %v)",
				i, d.PC(), prev.PC(), prev.NextPC())
		}
		si := d.Static
		switch {
		case si.Branch == isa.BranchNone:
			if d.Target != si.FallThrough {
				t.Fatalf("non-branch at %v jumped to %v", si.PC, d.Target)
			}
		case si.Branch == isa.BranchCond:
			if d.Taken && d.Target != si.Target {
				t.Fatalf("taken cond at %v went to %v, want %v", si.PC, d.Target, si.Target)
			}
			if !d.Taken && d.Target != si.FallThrough {
				t.Fatalf("not-taken cond at %v went to %v", si.PC, d.Target)
			}
		case si.Branch.AlwaysTaken():
			if !d.Taken {
				t.Fatalf("%v at %v resolved not-taken", si.Branch, si.PC)
			}
		}
		prev = d
	}
}

// TestCallReturnMatching: returns always target the instruction after
// the matching call.
func TestCallReturnMatching(t *testing.T) {
	prog := MustGenerate(tinyProfile())
	e := NewExecutor(prog, 3)
	var stack []isa.Addr
	for i := 0; i < 50_000; i++ {
		d := e.Next()
		switch d.Static.Branch {
		case isa.BranchCall, isa.BranchIndirectCall:
			stack = append(stack, d.Static.FallThrough)
		case isa.BranchReturn:
			if len(stack) == 0 {
				continue // dispatcher-level return (never happens by construction)
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if d.Target != want {
				t.Fatalf("return at %v went to %v, want %v", d.PC(), d.Target, want)
			}
		}
	}
}

// TestLoopTripCounts: a fixed-trip loop back-edge is taken exactly
// trip-1 times between not-taken outcomes.
func TestLoopTripCounts(t *testing.T) {
	p := tinyProfile()
	p.LoopTripVariable = false
	prog := MustGenerate(p)
	e := NewExecutor(prog, 0)
	runLen := map[isa.Addr]uint32{}
	expected := map[isa.Addr]uint32{}
	checked := 0
	for i := 0; i < 200_000 && checked < 50; i++ {
		d := e.Next()
		m := prog.CondMetaAt(d.PC())
		if m == nil || m.Behavior != CondLoop {
			continue
		}
		if d.Taken {
			runLen[d.PC()]++
			continue
		}
		// Exit: total iterations = taken run + 1.
		got := runLen[d.PC()] + 1
		if want, ok := expected[d.PC()]; ok {
			if got != want {
				t.Fatalf("loop at %v ran %d iterations, earlier %d (trip %d)",
					d.PC(), got, want, m.Trip)
			}
			checked++
		} else {
			expected[d.PC()] = got
		}
		runLen[d.PC()] = 0
	}
	if checked == 0 {
		t.Skip("no loop completed twice in the window")
	}
}

func TestBiasedBranchFrequencies(t *testing.T) {
	p := tinyProfile()
	prog := MustGenerate(p)
	e := NewExecutor(prog, 0)
	taken := map[isa.Addr]int{}
	total := map[isa.Addr]int{}
	for i := 0; i < 300_000; i++ {
		d := e.Next()
		m := prog.CondMetaAt(d.PC())
		if m == nil || m.Behavior != CondBiased {
			continue
		}
		total[d.PC()]++
		if d.Taken {
			taken[d.PC()]++
		}
	}
	for pc, n := range total {
		if n < 200 {
			continue
		}
		m := prog.CondMetaAt(pc)
		rate := float64(taken[pc]) / float64(n)
		if rate < m.PTaken-0.12 || rate > m.PTaken+0.12 {
			t.Errorf("biased branch at %v: rate %.2f vs PTaken %.2f (n=%d)", pc, rate, m.PTaken, n)
		}
	}
}

func TestPhaseRotationChangesHotSet(t *testing.T) {
	p := tinyProfile()
	p.PhaseLen = 20_000
	prog := MustGenerate(p)
	e := NewExecutor(prog, 0)
	countTargets := func(n int) map[isa.Addr]int {
		m := map[isa.Addr]int{}
		for i := 0; i < n; i++ {
			d := e.Next()
			if d.PC() == prog.DispatchPC() {
				m[d.Target]++
			}
		}
		return m
	}
	before := countTargets(20_000)
	e.Skip(20_000) // advance a full phase
	after := countTargets(20_000)
	top := func(m map[isa.Addr]int) isa.Addr {
		var best isa.Addr
		for k, v := range m {
			if v > m[best] {
				best = k
			}
		}
		return best
	}
	if top(before) == top(after) {
		t.Error("hot dispatcher target unchanged across phases")
	}
}

func TestSequentialDispatchRoundRobin(t *testing.T) {
	p := tinyProfile()
	p.DispatchSequential = true
	prog := MustGenerate(p)
	e := NewExecutor(prog, 0)
	meta := prog.IndirectMetaAt(prog.DispatchPC())
	var seen []isa.Addr
	for i := 0; i < 500_000 && len(seen) < 2*len(meta.Targets); i++ {
		d := e.Next()
		if d.PC() == prog.DispatchPC() {
			seen = append(seen, d.Target)
		}
	}
	if len(seen) < 2*len(meta.Targets) {
		t.Fatalf("only %d dispatches observed", len(seen))
	}
	for i, tg := range seen {
		if tg != meta.Targets[i%len(meta.Targets)] {
			t.Fatalf("dispatch %d went to %v, want round-robin %v", i, tg, meta.Targets[i%len(meta.Targets)])
		}
	}
}

// Property: zipfWeights is a valid, monotone cumulative distribution.
func TestZipfWeightsProperty(t *testing.T) {
	f := func(n uint8, skew uint8) bool {
		nn := int(n%200) + 1
		s := float64(skew%30) / 10.0
		w := zipfWeights(nn, s, newRNG(1))
		prev := 0.0
		for _, c := range w {
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return prev > 0.999 && prev < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFootprintScalesWithFuncs(t *testing.T) {
	small := tinyProfile()
	big := tinyProfile()
	big.Funcs = 160
	big.DispatchTargets = 120
	a, b := MustGenerate(small), MustGenerate(big)
	if b.FootprintBytes() < 2*a.FootprintBytes() {
		t.Errorf("footprint did not scale: %d vs %d", a.FootprintBytes(), b.FootprintBytes())
	}
}

func TestCondBehaviorStrings(t *testing.T) {
	for _, b := range []CondBehavior{CondBiased, CondPeriodic, CondIID, CondLoop, CondBehavior(9)} {
		if b.String() == "" {
			t.Errorf("empty string for %d", b)
		}
	}
}

// TestExecutorNeverTrapped guards against multiplicative loop nesting:
// every application's executor must keep returning to the dispatcher
// even deep into the run (regression: gcc once disappeared into a
// nested loop for millions of instructions).
func TestExecutorNeverTrapped(t *testing.T) {
	if testing.Short() {
		t.Skip("long scan")
	}
	for _, p := range All() {
		prog := MustGenerate(p)
		e := NewExecutor(prog, 0)
		e.Skip(2_000_000)
		dispatches := 0
		for i := 0; i < 200_000; i++ {
			if d := e.Next(); d.PC() == prog.DispatchPC() {
				dispatches++
			}
		}
		if dispatches == 0 {
			t.Errorf("%s: executor trapped after 2M instructions", p.Name)
		}
	}
}
