package workload

import (
	"fmt"
	"sync"

	"udpsim/internal/isa"
)

// A Stream produces the architectural (on-path) dynamic instruction
// stream, one record per call. Both the synthetic Executor and trace
// replayers satisfy it; the frontend's oracle consumes it (structurally,
// as frontend.InstrSource) without knowing which implementation it got.
type Stream interface {
	Next() isa.DynInstr
}

// A Source is a complete workload identity: a static program image the
// frontend walks, a factory for the dynamic stream the backend retires,
// and a stable key the caches shard on. The two implementations are
// SyntheticSource (profile-generated, stream re-executable at any salt)
// and trace.Source (self-contained UDPT2 recording, keyed by content
// hash).
type Source interface {
	// Name is the human-facing workload label (Result.Workload etc).
	Name() string
	// Key is the canonical cache identity. Synthetic sources use the
	// full profile serialization ("profile:…"); trace sources use
	// "trace:" + SHA-256 of the trace file content, consistent with the
	// content-addressed result store.
	Key() string
	// Image returns the static program image (shared; callers must not
	// mutate).
	Image() (*Program, error)
	// Stream returns a fresh dynamic instruction stream for the given
	// seed salt. Trace sources accept only the salt they were recorded
	// at.
	Stream(seedSalt uint64) (Stream, error)
}

// SyntheticSource adapts a Profile to the Source interface: the image
// is generated (and memoized) from the profile, and every Stream call
// re-executes it deterministically.
type SyntheticSource struct {
	p    Profile
	once sync.Once
	prog *Program
	err  error
}

// NewSyntheticSource wraps a profile.
func NewSyntheticSource(p Profile) *SyntheticSource { return &SyntheticSource{p: p} }

// Name returns the profile name.
func (s *SyntheticSource) Name() string { return s.p.Name }

// Key returns "profile:" + the canonical profile serialization.
func (s *SyntheticSource) Key() string { return "profile:" + s.p.Key() }

// Image generates (once) and returns the program image.
func (s *SyntheticSource) Image() (*Program, error) {
	s.once.Do(func() { s.prog, s.err = Generate(s.p) })
	return s.prog, s.err
}

// Stream returns a fresh executor over the image.
func (s *SyntheticSource) Stream(seedSalt uint64) (Stream, error) {
	prog, err := s.Image()
	if err != nil {
		return nil, err
	}
	return NewExecutor(prog, seedSalt), nil
}

// --- process-wide source registry ---
//
// Trace sources are loaded from files by whoever holds the file (a cmd
// main, the daemon's submit handler) and registered here; the sim layer
// then resolves Config.TraceRef → Source without importing the trace
// package (which imports workload — the registry breaks the cycle).

var (
	srcMu     sync.RWMutex
	srcByKey  = map[string]Source{}
	srcByName = map[string]Source{}
)

// RegisterSource publishes a source under both its Key and Name.
// Re-registering the same key replaces the entry (idempotent for
// content-identical traces).
func RegisterSource(s Source) {
	srcMu.Lock()
	defer srcMu.Unlock()
	srcByKey[s.Key()] = s
	srcByName[s.Name()] = s
}

// SourceByKey resolves a registered source by cache key
// (e.g. "trace:<sha256>").
func SourceByKey(key string) (Source, bool) {
	srcMu.RLock()
	defer srcMu.RUnlock()
	s, ok := srcByKey[key]
	return s, ok
}

// SourceByName resolves a registered source by workload name.
func SourceByName(name string) (Source, bool) {
	srcMu.RLock()
	defer srcMu.RUnlock()
	s, ok := srcByName[name]
	return s, ok
}

// MustSourceByKey is SourceByKey or panic, for paths where the caller
// already validated registration.
func MustSourceByKey(key string) Source {
	s, ok := SourceByKey(key)
	if !ok {
		panic(fmt.Sprintf("workload: source %q not registered", key))
	}
	return s
}
