// Backend behaviour is exercised through a fully wired machine (the
// backend's contract is inseparable from the frontend's recovery
// protocol), so these tests live in an external package and drive
// internal/sim.
package backend_test

import (
	"testing"

	"udpsim/internal/backend"
	"udpsim/internal/frontend"
	"udpsim/internal/isa"
	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

func machine(t *testing.T, mutate func(*sim.Config)) *sim.Machine {
	t.Helper()
	p := workload.MustByName("mysql")
	p.Funcs = 60
	p.DispatchTargets = 40
	cfg := sim.NewConfig(p, sim.MechBaseline)
	cfg.MaxInstructions = 60_000
	cfg.WarmupInstructions = 0
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := sim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRetirementIsProgramOrder(t *testing.T) {
	m := machine(t, nil)
	var lastSeq uint64
	m.BE.RetireObserver = func(fi *frontend.FrontInstr) {
		if fi.Oracle.Seq != lastSeq+1 {
			t.Fatalf("retire sequence jumped %d → %d", lastSeq, fi.Oracle.Seq)
		}
		lastSeq = fi.Oracle.Seq
	}
	m.RunInstructions(60_000)
}

func TestIPCBoundedByWidth(t *testing.T) {
	m := machine(t, func(c *sim.Config) { c.Width = 4 })
	m.RunInstructions(60_000)
	r := m.Snapshot()
	if r.IPC > 4 {
		t.Errorf("IPC %v exceeds retire width", r.IPC)
	}
}

func TestNarrowBackendSlower(t *testing.T) {
	wide := machine(t, nil)
	wide.RunInstructions(60_000)
	narrow := machine(t, func(c *sim.Config) { c.Width = 1 })
	narrow.RunInstructions(60_000)
	w, n := wide.Snapshot(), narrow.Snapshot()
	if n.IPC >= w.IPC {
		t.Errorf("1-wide (%.3f) not slower than 6-wide (%.3f)", n.IPC, w.IPC)
	}
	if n.IPC > 1 {
		t.Errorf("1-wide IPC %v above 1", n.IPC)
	}
}

func TestTinyROBThrottles(t *testing.T) {
	big := machine(t, nil)
	big.RunInstructions(60_000)
	small := machine(t, func(c *sim.Config) { c.ROBSize = 16 })
	small.RunInstructions(60_000)
	b, s := big.Snapshot(), small.Snapshot()
	if s.IPC >= b.IPC {
		t.Errorf("16-entry ROB (%.3f) not slower than 352 (%.3f)", s.IPC, b.IPC)
	}
	if s.BE.ROBFullCycles == 0 {
		t.Error("tiny ROB never filled")
	}
}

func TestRecoveriesFlushWrongPath(t *testing.T) {
	m := machine(t, nil)
	m.RunInstructions(60_000)
	r := m.Snapshot()
	if r.BE.Recoveries == 0 {
		t.Fatal("no recoveries on a branchy workload")
	}
	if r.BE.Recoveries != r.FE.Recoveries {
		t.Errorf("backend recoveries %d != frontend %d", r.BE.Recoveries, r.FE.Recoveries)
	}
	if r.BE.Flushed == 0 {
		t.Error("recoveries flushed nothing")
	}
}

func TestWrongPathInstructionsNeverRetire(t *testing.T) {
	m := machine(t, nil)
	m.BE.RetireObserver = func(fi *frontend.FrontInstr) {
		if !fi.OnPath {
			t.Fatal("wrong-path instruction retired")
		}
	}
	m.RunInstructions(60_000)
}

func TestSlowMemoryLowersIPC(t *testing.T) {
	fast := machine(t, nil)
	fast.RunInstructions(60_000)
	slow := machine(t, func(c *sim.Config) {
		c.DRAMLatency = 600
		c.L2Latency = 60
		c.LLCLatency = 150
	})
	slow.RunInstructions(60_000)
	if slow.Snapshot().IPC >= fast.Snapshot().IPC {
		t.Error("slower memory did not lower IPC")
	}
}

func TestLoadsAccessDataHierarchy(t *testing.T) {
	m := machine(t, nil)
	m.RunInstructions(60_000)
	if m.Hier.Stats.DataAccesses == 0 {
		t.Error("no data accesses reached the hierarchy")
	}
	if m.Hier.Stats.DataL1Hits == 0 {
		t.Error("no L1D hits — data locality model broken")
	}
	_ = isa.Addr(0)
}

// TestNoROBAliasingUnderFlushes pins the instruction-pool ownership
// discipline: with the O(ROB) aliasing assertion enabled, no decoded
// instruction may reuse the storage of one still live in the ROB (a
// double pool release would do exactly that after a recovery flush).
// Run under a mechanism and MSHR pressure that maximize flush traffic.
func TestNoROBAliasingUnderFlushes(t *testing.T) {
	backend.SetDebugAliasCheck(true)
	defer backend.SetDebugAliasCheck(false)
	m := machine(t, func(cfg *sim.Config) {
		cfg.Mechanism = sim.MechUDP
		cfg.L2MSHRs = 4
		cfg.LLCMSHRs = 4
	})
	r := m.Run() // panics inside decode on aliasing
	if r.Recoveries == 0 {
		t.Error("no recoveries — the aliasing check never saw a flush")
	}
}
