// Package backend models the out-of-order execution engine of the
// simulated machine: decode/dispatch into a reorder buffer, a unified
// reservation-station budget, per-class functional units, load/store
// buffers with dcache access, execute-time branch resolution with
// recovery, and in-order retirement.
//
// Fidelity is calibrated to what the paper's experiments observe: the
// backend consumes instructions at a bounded rate (making FDIP's
// runahead meaningful), branch resolution latency depends on the data
// dependencies feeding the branch (making recovery timing realistic),
// and icache-miss-induced fetch starvation surfaces as retire slots
// lost to frontend stalls (paper Fig. 15).
package backend

import (
	"udpsim/internal/frontend"
	"udpsim/internal/isa"
	"udpsim/internal/memory"
)

// Config sizes the backend (Table II defaults assembled by sim).
type Config struct {
	Width       int // decode/retire width
	ROBSize     int
	RSSize      int
	ALUs        int
	LoadPorts   int
	StorePorts  int
	LoadBuffer  int
	StoreBuffer int
	// MulLatency is the long-op execute latency.
	MulLatency int
	// DepProb is the probability (in 1/256ths) that an instruction
	// depends on a recent older instruction's completion; the synthetic
	// stand-in for register dependences.
	DepProb256 int
	// DepWindow is how far back (in ROB slots) a dependence may reach.
	DepWindow int
	// BranchResolveExtra models the fetch-to-execute pipeline depth a
	// branch traverses before it can redirect the frontend; it widens
	// the wrong-path window after a misprediction.
	BranchResolveExtra int
}

// Stats aggregates backend events.
type Stats struct {
	Retired         uint64
	RetiredBranches uint64
	Cycles          uint64
	ROBFullCycles   uint64
	RSFullCycles    uint64
	Recoveries      uint64
	// EmptyROBCycles counts cycles with nothing to retire because the
	// ROB was empty — pure frontend starvation.
	EmptyROBCycles uint64
	// RetireStallCycles counts cycles where retirement made no progress
	// with a non-empty ROB.
	RetireStallCycles uint64
	Flushed           uint64 // instructions squashed by recoveries
	FlushedOnPath     uint64 // on-path instructions squashed (post-recovery refetches)
	WrongPathExecuted uint64 // wrong-path instructions that entered the ROB
	// MemRetries counts load/store issue attempts rejected by the memory
	// hierarchy under MSHR pressure (the instruction re-issues next
	// cycle).
	MemRetries uint64
}

// debugAliasCheck enables an O(ROB) aliasing assertion per decoded
// instruction (diagnostic only).
var debugAliasCheck = false

// SetDebugAliasCheck toggles the per-decode ROB aliasing assertion
// (diagnostic; costs O(ROBSize) per decoded instruction).
func SetDebugAliasCheck(on bool) { debugAliasCheck = on }

type entryState uint8

const (
	stateDispatched entryState = iota
	stateIssued
	stateDone
)

type robEntry struct {
	fi        *frontend.FrontInstr
	state     entryState
	readyAt   uint64 // execute completion cycle
	depOffset int    // dependence distance in ROB slots (0 = none)
	valid     bool
	// gen disambiguates slot reuse for the compact scheduling lists.
	gen uint32
}

// entryRef is a generation-checked reference into the ROB ring, letting
// the scheduler keep compact lists (dispatched-awaiting-issue,
// issued-awaiting-completion) instead of scanning the whole ROB every
// cycle; references to flushed entries go stale and are dropped lazily.
type entryRef struct {
	idx int
	gen uint32
}

// Backend is the out-of-order engine.
type Backend struct {
	cfg  Config
	fe   *frontend.Frontend
	hier *memory.Hierarchy

	rob   []robEntry
	head  int // oldest
	tail  int // next free
	count int

	// Compact scheduler worklists (see entryRef).
	pendingIssue []entryRef
	inFlight     []entryRef

	inFlightLoads  int
	inFlightStores int
	rsBusy         int // dispatched or issued but not yet done
	rng            uint64

	// RetireObserver, when non-nil, sees every retired instruction in
	// program order (tooling and invariant tests).
	RetireObserver func(*frontend.FrontInstr)

	Stats Stats
}

// New wires a backend to its frontend and memory hierarchy.
func New(cfg Config, fe *frontend.Frontend, hier *memory.Hierarchy) *Backend {
	if cfg.Width <= 0 {
		cfg.Width = 6
	}
	if cfg.ROBSize <= 0 {
		cfg.ROBSize = 352
	}
	if cfg.RSSize <= 0 {
		cfg.RSSize = 125
	}
	if cfg.ALUs <= 0 {
		cfg.ALUs = 4
	}
	if cfg.LoadPorts <= 0 {
		cfg.LoadPorts = 2
	}
	if cfg.StorePorts <= 0 {
		cfg.StorePorts = 2
	}
	if cfg.LoadBuffer <= 0 {
		cfg.LoadBuffer = 64
	}
	if cfg.StoreBuffer <= 0 {
		cfg.StoreBuffer = 64
	}
	if cfg.MulLatency <= 0 {
		cfg.MulLatency = 4
	}
	if cfg.DepWindow <= 0 {
		cfg.DepWindow = 8
	}
	if cfg.DepProb256 == 0 {
		cfg.DepProb256 = 56 // ~22% of instructions carry a modelled dependence
	}
	if cfg.BranchResolveExtra == 0 {
		cfg.BranchResolveExtra = 10
	}
	return &Backend{
		cfg:  cfg,
		fe:   fe,
		hier: hier,
		rob:  make([]robEntry, cfg.ROBSize),
		// The scheduler worklists are bounded by the live ROB window
		// (plus one decode group of stale refs awaiting compaction);
		// preallocating keeps the per-cycle loop allocation-free.
		pendingIssue: make([]entryRef, 0, cfg.ROBSize+cfg.Width),
		inFlight:     make([]entryRef, 0, cfg.ROBSize+cfg.Width),
		rng:          0x9e3779b97f4a7c15,
	}
}

// ResetStats clears the backend's accumulated statistics (end of
// warmup) while preserving pipeline state. It implements the sim
// package's StatsResetter.
func (b *Backend) ResetStats() { b.Stats = Stats{} }

// ROBOccupancy returns the number of in-flight instructions.
func (b *Backend) ROBOccupancy() int { return b.count }

// Cycle advances the backend: retire, complete/resolve, issue, decode.
func (b *Backend) Cycle(cycle uint64) {
	b.Stats.Cycles++
	b.retire(cycle)
	b.complete(cycle)
	b.issue(cycle)
	b.decode(cycle)
}

// retire commits up to Width oldest completed instructions in order.
func (b *Backend) retire(cycle uint64) {
	if b.count == 0 {
		b.Stats.EmptyROBCycles++
		return
	}
	retired := 0
	for retired < b.cfg.Width && b.count > 0 {
		e := &b.rob[b.head]
		if e.state != stateDone || e.readyAt > cycle {
			break
		}
		fi := e.fi
		if fi.OnPath {
			b.Stats.Retired++
			if fi.Static.IsBranch() {
				b.Stats.RetiredBranches++
			}
			b.fe.OnRetire(fi, cycle)
			if b.RetireObserver != nil {
				b.RetireObserver(fi)
			}
			// Retirement is the instruction's last use: recycle it.
			b.fe.ReleaseInstr(fi)
		} else {
			// Wrong-path instructions normally get squashed by the
			// recovery flush before retiring; an off-path instruction
			// reaching the ROB head can only happen if its divergence
			// resolution is still in flight — hold it.
			break
		}
		b.popHead()
		retired++
	}
	if retired == 0 && b.count > 0 {
		b.Stats.RetireStallCycles++
	}
}

// complete marks executed instructions done and resolves diverging
// branches (execute-time recovery).
func (b *Backend) complete(cycle uint64) {
	keep := b.inFlight[:0]
	for n, ref := range b.inFlight {
		e := &b.rob[ref.idx]
		if !e.valid || e.gen != ref.gen || e.state != stateIssued {
			continue // flushed by a recovery
		}
		if e.readyAt > cycle {
			keep = append(keep, ref)
			continue
		}
		e.state = stateDone
		b.rsBusy--
		if e.fi.Static.Class == isa.ClassLoad {
			b.inFlightLoads--
		}
		if e.fi.Static.Class == isa.ClassStore {
			b.inFlightStores--
		}
		if e.fi.Divergence != nil {
			// Misprediction resolved at execute: recover. Everything
			// younger is flushed; keep the rest of the worklist (stale
			// refs drop lazily) and resume next cycle.
			keep = append(keep, b.inFlight[n+1:]...)
			b.inFlight = keep
			b.recoverAt(ref.idx, cycle)
			return
		}
	}
	b.inFlight = keep
}

// recoverAt flushes all ROB entries younger than idx and resteers the
// frontend.
func (b *Backend) recoverAt(idx int, cycle uint64) {
	b.Stats.Recoveries++
	fi := b.rob[idx].fi
	// Squash younger entries.
	j := (idx + 1) % len(b.rob)
	for b.tail != j {
		k := (b.tail - 1 + len(b.rob)) % len(b.rob)
		e := &b.rob[k]
		if e.valid {
			if e.state == stateIssued {
				if e.fi.Static.Class == isa.ClassLoad {
					b.inFlightLoads--
				}
				if e.fi.Static.Class == isa.ClassStore {
					b.inFlightStores--
				}
			}
			if e.state != stateDone {
				b.rsBusy--
			}
			b.Stats.Flushed++
			if e.fi.OnPath {
				b.Stats.FlushedOnPath++
			}
			e.valid = false
			// A squashed instruction has no further readers (worklist
			// refs are dropped by the valid/gen checks): recycle it.
			b.fe.ReleaseInstr(e.fi)
			e.fi = nil
			b.count--
		}
		b.tail = k
	}
	b.fe.Recover(fi, cycle)
}

// issue moves dispatched instructions to execution, respecting
// functional-unit ports, load/store buffers, and dependences.
func (b *Backend) issue(cycle uint64) {
	alu := b.cfg.ALUs
	ld := b.cfg.LoadPorts
	st := b.cfg.StorePorts
	keep := b.pendingIssue[:0]
	for _, ref := range b.pendingIssue {
		idx := ref.idx
		e := &b.rob[idx]
		if !e.valid || e.gen != ref.gen || e.state != stateDispatched {
			continue // flushed
		}
		// Dependence: wait for the older instruction's completion. The
		// producer must still be in the ROB window behind this entry.
		start := cycle
		if e.depOffset > 0 && b.olderInWindow(idx, e.depOffset) {
			depIdx := (idx - e.depOffset + len(b.rob)) % len(b.rob)
			dep := &b.rob[depIdx]
			if dep.valid {
				if dep.state == stateDispatched {
					keep = append(keep, ref) // producer not even issued
					continue
				}
				if dep.readyAt > start {
					start = dep.readyAt
				}
			}
		}
		var lat uint64
		switch e.fi.Static.Class {
		case isa.ClassLoad:
			if ld == 0 || b.inFlightLoads >= b.cfg.LoadBuffer {
				keep = append(keep, ref)
				continue
			}
			l, _, ok := b.hier.DataRequest(b.dataAddr(e.fi), start)
			if !ok {
				// MSHR pressure in the hierarchy: nothing was consumed,
				// the load re-issues next cycle.
				b.Stats.MemRetries++
				keep = append(keep, ref)
				continue
			}
			ld--
			b.inFlightLoads++
			lat = l
		case isa.ClassStore:
			if st == 0 || b.inFlightStores >= b.cfg.StoreBuffer {
				keep = append(keep, ref)
				continue
			}
			// Stores retire through the store buffer; model a short
			// pipeline latency (the dcache write happens post-commit),
			// but the write-allocate fill still occupies MSHRs and
			// bandwidth like any other request.
			if _, _, ok := b.hier.DataRequest(b.dataAddr(e.fi), start); !ok {
				b.Stats.MemRetries++
				keep = append(keep, ref)
				continue
			}
			st--
			b.inFlightStores++
			lat = 1
		case isa.ClassMul:
			if alu == 0 {
				keep = append(keep, ref)
				continue
			}
			alu--
			lat = uint64(b.cfg.MulLatency)
		default: // ALU, branches, nops
			if alu == 0 {
				keep = append(keep, ref)
				continue
			}
			alu--
			lat = 1
			if e.fi.Static.IsBranch() {
				// Resolution happens at the end of the execute stage,
				// a full pipeline traversal after decode.
				lat += uint64(b.cfg.BranchResolveExtra)
			}
		}
		e.state = stateIssued
		e.readyAt = start + lat
		b.inFlight = append(b.inFlight, ref)
	}
	b.pendingIssue = keep
}

// olderInWindow reports whether an entry depOffset slots older than idx
// is still inside the live ROB window.
func (b *Backend) olderInWindow(idx, depOffset int) bool {
	// Distance from head to idx in ring order.
	dist := (idx - b.head + len(b.rob)) % len(b.rob)
	return depOffset <= dist
}

// dataAddr picks the memory address for a load/store: the resolved
// oracle address on the correct path, the static representative address
// on the wrong path (the same replay approximation Scarab's trace mode
// makes, as the paper notes in Section III-A).
func (b *Backend) dataAddr(fi *frontend.FrontInstr) isa.Addr {
	if fi.OnPath {
		return fi.Oracle.DataAddr
	}
	return fi.Static.DataAddr
}

// decode pulls instructions from the frontend's decode queue into the
// ROB, invoking post-fetch correction per instruction.
func (b *Backend) decode(cycle uint64) {
	for n := 0; n < b.cfg.Width; n++ {
		if b.count >= len(b.rob) {
			b.Stats.ROBFullCycles++
			return
		}
		if b.rsBusy >= b.cfg.RSSize {
			b.Stats.RSFullCycles++
			return
		}
		fi := b.fe.PopDecode()
		if fi == nil {
			return
		}
		if debugAliasCheck {
			for i := range b.rob {
				if b.rob[i].valid && b.rob[i].fi == fi {
					panic("backend: decoded instruction aliases a live ROB entry (double pool release)")
				}
			}
		}
		if !fi.OnPath {
			b.Stats.WrongPathExecuted++
		}
		resteered := b.fe.OnDecode(fi, cycle)
		e := &b.rob[b.tail]
		gen := e.gen + 1
		*e = robEntry{fi: fi, state: stateDispatched, valid: true, gen: gen}
		b.pendingIssue = append(b.pendingIssue, entryRef{idx: b.tail, gen: gen})
		// Synthetic dependence assignment.
		b.rng = b.rng*6364136223846793005 + 1442695040888963407
		if int(b.rng>>56)&0xff < b.cfg.DepProb256 {
			e.depOffset = 1 + int((b.rng>>32)%uint64(b.cfg.DepWindow))
		}
		b.tail = (b.tail + 1) % len(b.rob)
		b.count++
		b.rsBusy++
		if resteered {
			// Everything younger was flushed in the frontend; stop
			// decoding this cycle.
			return
		}
	}
}

func (b *Backend) popHead() {
	// Preserve the slot's generation so stale worklist references can
	// never alias a future occupant.
	gen := b.rob[b.head].gen
	b.rob[b.head] = robEntry{gen: gen}
	b.head = (b.head + 1) % len(b.rob)
	b.count--
}
