// udpdeepdive opens up the UDP mechanism on a branchy workload: it
// steps the machine cycle by cycle and reports the internal state the
// paper's Section IV-B describes — the off-path confidence estimator,
// Seniority-FTQ activity, Bloom-filter occupancy and super-line
// formation, and the resulting emit/drop decisions.
package main

import (
	"fmt"

	"udpsim"
	"udpsim/internal/core"
)

func main() {
	cfg := udpsim.NewConfig("xgboost", udpsim.MechUDP)
	cfg.MaxInstructions = 400_000
	cfg.WarmupInstructions = 0 // watch learning from cold

	m, err := udpsim.NewMachine(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println("UDP internals on xgboost (cold start, 400k instructions)")
	fmt.Printf("hardware budget: %d bytes\n\n", m.UDP().StorageBytes())

	fmt.Printf("%8s %10s %10s %10s %10s %8s %8s\n",
		"instrs", "assumed", "candidates", "emitted", "dropped", "fill", "flushes")
	for i := 0; i < 8; i++ {
		m.RunInstructions(50_000)
		u := m.UDP()
		set := u.Set().(*core.BloomUsefulSet)
		fmt.Printf("%7dk %10d %10d %10d %10d %7.2f %8d\n",
			(i+1)*50, u.OffPathAssumptions, u.CandidatesSeen,
			u.CandidatesEmitted, u.CandidatesDropped, set.FillRatio(), set.Flushes)
	}

	set := m.UDP().Set().(*core.BloomUsefulSet)
	fmt.Println("\nuseful-set composition:")
	fmt.Printf("  1-line inserts:  %d (16k-bit filter)\n", set.Inserted1)
	fmt.Printf("  2-line inserts:  %d (1k-bit filter)\n", set.Inserted2)
	fmt.Printf("  4-line inserts:  %d (1k-bit filter)\n", set.Inserted4)
	fmt.Printf("  lookup hits:     %d / %d / %d (1-/2-/4-line)\n", set.Hits1, set.Hits2, set.Hits4)

	sen := m.UDP().Seniority()
	fmt.Println("\nSeniority-FTQ (off-path candidates surviving flushes):")
	fmt.Printf("  insertions %d, retire-matches %d (%.0f%% proven useful), evictions %d\n",
		sen.Insertions, sen.Matches,
		pct(sen.Matches, sen.Insertions), sen.Evictions)

	r := m.Snapshot()
	fmt.Printf("\nend state: IPC %.4f, usefulness %.3f, %d prefetches dropped by UDP\n",
		r.IPC, r.Usefulness, r.PrefetchesDropped)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
