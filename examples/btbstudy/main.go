// btbstudy reproduces the paper's BTB-sensitivity analysis (Fig. 16)
// interactively for one workload: it sweeps the BTB from 1K to 16K
// entries, runs the FDIP baseline and UDP at each point, and reports
// how BTB pressure feeds the wrong-path machinery UDP filters — BTB
// hit rate, taken-branch misses, post-fetch corrections, off-path
// prefetch share, and the resulting UDP uplift.
package main

import (
	"fmt"
	"os"

	"udpsim"
)

func main() {
	app := "xgboost"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	prof, err := udpsim.WorkloadProfile(app)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btbstudy: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("BTB sensitivity study on %s (paper Fig. 16)\n\n", app)
	fmt.Printf("%8s %10s %12s %12s %12s %10s %10s\n",
		"BTB", "hit rate", "taken-miss", "pf-resteers", "off-path", "base IPC", "UDP uplift")

	for _, entries := range []int{1024, 2048, 4096, 8192, 16384} {
		base := run(prof, udpsim.MechBaseline, entries)
		udp := run(prof, udpsim.MechUDP, entries)
		fmt.Printf("%8d %9.1f%% %12d %12d %11.1f%% %10.4f %+9.2f%%\n",
			entries,
			base.BTBHitRate*100,
			base.FE.DivergencesBTBMiss,
			base.PostFetchResteers,
			(1-base.OnPathRatio)*100,
			base.IPC,
			udpsim.Speedup(udp, base)*100)
	}

	fmt.Println("\nReading: as the BTB shrinks, more taken branches are invisible to")
	fmt.Println("the frontend, post-fetch correction fires more often, and a larger")
	fmt.Println("share of prefetches is emitted on the wrong path — the waste UDP's")
	fmt.Println("useful-set filtering recovers.")
}

func run(prof udpsim.Profile, mech udpsim.Mechanism, btbEntries int) udpsim.Result {
	cfg := udpsim.NewConfigFor(prof, mech)
	cfg.BTBEntries = btbEntries
	cfg.MaxInstructions = 300_000
	cfg.WarmupInstructions = 1_000_000
	res, err := udpsim.Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}
