// tracetool records a synthetic workload execution to a compressed
// trace file, reloads it, verifies replay fidelity against live
// execution, summarizes it (instruction mix, footprint), and selects
// simpoint regions from its basic-block vectors — the paper's
// DynamoRIO/Intel-PT + SimPoint methodology end to end.
package main

import (
	"bytes"
	"fmt"
	"os"

	"udpsim"
	"udpsim/internal/sim"
	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

func main() {
	const app = "postgres"
	const n = 500_000

	prof, err := udpsim.WorkloadProfile(app)
	if err != nil {
		panic(err)
	}

	// 1. Record.
	path := "postgres.udpt"
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := trace.RecordN(f, prof, 0, n); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("recorded %d instructions of %s to %s (%d KiB, %.2f bytes/instr)\n",
		n, app, path, info.Size()/1024, float64(info.Size())/n)

	// 2. Reload + verify against live execution.
	data, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		panic(err)
	}
	prog, err := sim.SharedImage(prof)
	if err != nil {
		panic(err)
	}
	rp, err := trace.NewReplayer(prog, r)
	if err != nil {
		panic(err)
	}
	live := workload.NewExecutor(prog, 0)
	for i := 0; i < n; i++ {
		a, b := rp.Next(), live.Next()
		if a.PC() != b.PC() || a.Taken != b.Taken || a.Target != b.Target {
			panic(fmt.Sprintf("replay diverged at instruction %d: %v vs %v", i, a, b))
		}
	}
	fmt.Printf("replay verified: %d instructions identical to live execution\n", n)

	// 3. Summarize.
	r2, _ := trace.NewReader(bytes.NewReader(data))
	stats, err := trace.Analyze(prog, r2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trace stats: %v\n", &stats)

	// 4. Simpoints.
	r3, _ := trace.NewReader(bytes.NewReader(data))
	intervals, err := trace.Intervals(r3, 50_000)
	if err != nil {
		panic(err)
	}
	points := trace.Select(intervals, 3)
	fmt.Printf("simpoint selection over %d intervals of 50k instructions:\n", len(intervals))
	for _, p := range points {
		fmt.Printf("  region at instruction %d (weight %.2f)\n", p.Start, p.Weight)
	}

	_ = os.Remove(path)
}
