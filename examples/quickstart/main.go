// Quickstart: simulate one datacenter workload under baseline FDIP and
// under UDP, and compare IPC and icache behaviour — the library's
// 30-second tour.
package main

import (
	"fmt"

	"udpsim"
)

func main() {
	const app = "xgboost"

	base := udpsim.NewConfig(app, udpsim.MechBaseline)
	base.MaxInstructions = 400_000
	base.WarmupInstructions = 1_000_000

	udp := base
	udp.Mechanism = udpsim.MechUDP

	fmt.Printf("simulating %s (this generates a %s-scale synthetic image first)...\n\n", app, "MB")

	baseRes, err := udpsim.Run(base)
	if err != nil {
		panic(err)
	}
	udpRes, err := udpsim.Run(udp)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "FDIP-32", "UDP (8KB)")
	fmt.Printf("%-22s %12.4f %12.4f\n", "IPC", baseRes.IPC, udpRes.IPC)
	fmt.Printf("%-22s %12.2f %12.2f\n", "icache MPKI", baseRes.IcacheMPKI, udpRes.IcacheMPKI)
	fmt.Printf("%-22s %12.3f %12.3f\n", "prefetch usefulness", baseRes.Usefulness, udpRes.Usefulness)
	fmt.Printf("%-22s %12.3f %12.3f\n", "timeliness", baseRes.Timeliness, udpRes.Timeliness)
	fmt.Printf("%-22s %12d %12d\n", "prefetches emitted", baseRes.PrefetchesEmitted, udpRes.PrefetchesEmitted)
	fmt.Printf("%-22s %12s %12d\n", "prefetches dropped", "-", udpRes.PrefetchesDropped)
	fmt.Printf("\nUDP speedup: %+.2f%% (storage %d bytes)\n",
		udpsim.Speedup(udpRes, baseRes)*100, udpRes.UDPStorage)
}
