// ftqtuning demonstrates UFTQ's dynamic fetch-target-queue sizing on a
// workload with phase changes: the dispatcher's hot function set rotates
// mid-run, and the always-on controller re-searches the FTQ depth. The
// program prints a live adaptation timeline and the end-to-end
// comparison against fixed depths.
package main

import (
	"fmt"

	"udpsim"
)

func main() {
	// Build a phase-changing variant of the mysql profile: every 300k
	// instructions the hot set rotates, shifting utility and timeliness.
	prof, err := udpsim.WorkloadProfile("mysql")
	if err != nil {
		panic(err)
	}
	prof.PhaseLen = 300_000

	fmt.Println("UFTQ-ATR-AUR adapting across workload phases (mysql, rotating hot set)")
	fmt.Println()

	// Fixed-depth references.
	for _, depth := range []int{16, 32, 64} {
		cfg := udpsim.NewConfigFor(prof, udpsim.MechBaseline)
		cfg.FTQDepth = depth
		cfg.MaxInstructions = 600_000
		cfg.WarmupInstructions = 300_000
		r, err := udpsim.Run(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("fixed FTQ %-3d: IPC %.4f (MPKI %.1f)\n", depth, r.IPC, r.IcacheMPKI)
	}

	// UFTQ with a live adaptation timeline: step the machine manually
	// and sample the controller's depth.
	cfg := udpsim.NewConfigFor(prof, udpsim.MechUFTQATRAUR)
	cfg.MaxInstructions = 600_000
	cfg.WarmupInstructions = 300_000
	m, err := udpsim.NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Println("adaptation timeline (sampled every 100k instructions):")
	m.RunInstructions(cfg.WarmupInstructions)
	m.ResetStats()
	for i := 0; i < 6; i++ {
		m.RunInstructions(100_000)
		fmt.Printf("  %4dk instrs: FTQ depth %-3d (QDAUR %d, QDATR %d, %d re-searches)\n",
			(i+1)*100, m.UFTQ().Depth(), m.UFTQ().QDAUR(), m.UFTQ().QDATR(), m.UFTQ().Researches)
	}
	r := m.Snapshot()
	fmt.Printf("\nUFTQ-ATR-AUR: IPC %.4f (MPKI %.1f), final depth %d\n",
		r.IPC, r.IcacheMPKI, r.FinalFTQDepth)
}
