// Benchmark harness: one benchmark per evaluation table/figure of the
// paper, regenerating its rows through internal/experiments, plus
// simulator-throughput microbenchmarks.
//
//	go test -bench=. -benchmem                 # everything, quick fidelity
//	go test -bench=Fig13 -benchfidelity=full   # paper-fidelity UDP figure
//
// Figure benchmarks report the headline quantity of their figure as a
// custom metric (speedup %, MPKI, ratio) so `go test -bench` output
// doubles as a results table. Results are deterministic; repeated
// iterations are served from the experiments result cache, so ns/op is
// only meaningful for the first iteration.
package udpsim_test

import (
	"flag"
	"fmt"
	"testing"

	"udpsim"
	"udpsim/internal/experiments"
	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

var benchFidelity = flag.String("benchfidelity", "quick", "figure benchmark fidelity: quick or full")

// benchOptions picks the simulation effort for figure benchmarks. The
// quick setting exercises every code path of each figure in seconds;
// full matches cmd/figures' evaluation fidelity.
func benchOptions() experiments.Options {
	if *benchFidelity == "full" {
		return experiments.DefaultOptions()
	}
	o := experiments.QuickOptions()
	// A representative 4-app subset keeps quick benches fast while
	// spanning the workload space: a server, a compiler, and the two
	// extreme cases.
	o.Workloads = []string{"mysql", "clang", "verilator", "xgboost"}
	return o
}

func reportSpeedups(b *testing.B, rows []experiments.SpeedupRow, series string) {
	b.Helper()
	sum := 0.0
	for _, r := range rows {
		v := r.Speedups[series] * 100
		b.ReportMetric(v, r.App+"_"+series+"_%")
		sum += v
	}
	if len(rows) > 0 {
		b.ReportMetric(sum/float64(len(rows)), "avg_"+series+"_%")
	}
}

func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.NewConfig(workload.MustByName("mysql"), sim.MechBaseline)
		if cfg.BTBEntries != 8192 || cfg.ROBSize != 352 {
			b.Fatal("Table II defaults drifted")
		}
	}
}

func BenchmarkTable3OptimalFTQ(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, corrU, _, err := experiments.Table3(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.OptimalFTQ), r.App+"_optFTQ")
			}
			b.ReportMetric(corrU, "corr_utility")
		}
	}
}

func BenchmarkFig01PerfectIcache(b *testing.B) {
	o := benchOptions()
	var rows []experiments.SpeedupRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure1(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedups(b, rows, "perfect-icache")
}

func BenchmarkFig03FTQSweep(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, optima, err := experiments.Figure3(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for app, d := range optima {
				b.ReportMetric(float64(d), app+"_optFTQ")
			}
		}
	}
}

func benchSweep(b *testing.B, run func(experiments.Options) ([]experiments.SweepSeries, error), metric string) {
	b.Helper()
	o := benchOptions()
	var series []experiments.SweepSeries
	var err error
	for i := 0; i < b.N; i++ {
		series, err = run(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if len(s.Values) > 0 {
			b.ReportMetric(s.Values[len(s.Values)-1], s.App+"_"+metric+"_at_max")
		}
	}
}

func BenchmarkFig04Timeliness(b *testing.B) {
	benchSweep(b, experiments.Figure4, "timeliness")
}

func BenchmarkFig05OnOffPath(b *testing.B) {
	benchSweep(b, experiments.Figure5, "onpath")
}

func BenchmarkFig06Usefulness(b *testing.B) {
	benchSweep(b, experiments.Figure6, "usefulness")
}

func BenchmarkFig08Occupancy(b *testing.B) {
	benchSweep(b, experiments.Figure8, "occupancy")
}

func BenchmarkFig11UFTQ(b *testing.B) {
	o := benchOptions()
	var rows []experiments.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Figure11(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedups(b, rows, string(sim.MechUFTQATRAUR))
}

func BenchmarkFig12UFTQMisses(b *testing.B) {
	o := benchOptions()
	var rows []experiments.MPKIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure12(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MPKI[string(sim.MechUFTQATRAUR)], r.App+"_MPKI")
	}
}

func BenchmarkFig13UDP(b *testing.B) {
	o := benchOptions()
	var rows []experiments.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure13(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedups(b, rows, "udp")
	reportSpeedups(b, rows, "udp-infinite")
}

func BenchmarkFig14MPKI(b *testing.B) {
	o := benchOptions()
	var rows []experiments.MPKIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure14(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MPKI["udp"], r.App+"_udp_MPKI")
	}
}

func BenchmarkFig15LostInstr(b *testing.B) {
	o := benchOptions()
	var rows []experiments.LostRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure15(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Lost["udp"], r.App+"_udp_lostPKI")
	}
}

func BenchmarkFig16BTBSensitivity(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"xgboost", "mysql"} // BTB sweep is 2 runs per point
	var series []experiments.SweepSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure16(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		b.ReportMetric(s.Values[0]*100, s.App+"_udp_at_1K_BTB_%")
	}
}

func BenchmarkFig17FTQSensitivity(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"verilator", "xgboost"}
	var series []experiments.SweepSeries
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure17(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		b.ReportMetric(s.Values[len(s.Values)-1]*100, s.App+"_udp_at_128_FTQ_%")
	}
}

// --- simulator throughput microbenchmarks ---

// BenchmarkSimulatorThroughput measures simulated instructions per
// wall-clock second for each mechanism on a mid-size workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := workload.MustByName("mysql")
	p.Funcs = 200
	p.DispatchTargets = 150
	for _, mech := range []udpsim.Mechanism{udpsim.MechBaseline, udpsim.MechUDP, udpsim.MechUFTQATRAUR} {
		b.Run(string(mech), func(b *testing.B) {
			cfg := udpsim.NewConfigFor(p, mech)
			cfg.WarmupInstructions = 0
			m, err := udpsim.NewMachine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			const chunk = 10_000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.RunInstructions(chunk)
			}
			b.SetBytes(0)
			b.ReportMetric(float64(chunk*b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkImageGeneration measures synthetic program image build time.
func BenchmarkImageGeneration(b *testing.B) {
	p := workload.MustByName("mysql")
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i) + 1 // defeat any caching
		if _, err := workload.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleExecution measures raw architectural execution speed.
func BenchmarkOracleExecution(b *testing.B) {
	p := workload.MustByName("mysql")
	p.Funcs = 200
	p.DispatchTargets = 150
	prog, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	e := workload.NewExecutor(prog, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Next()
	}
}

// sanity check that quick bench options stay valid if defaults change.
func TestBenchOptionsValid(t *testing.T) {
	o := benchOptions()
	if o.Instructions == 0 || len(o.Workloads) == 0 {
		t.Fatalf("bench options degenerate: %+v", o)
	}
	for _, w := range o.Workloads {
		if _, err := udpsim.WorkloadProfile(w); err != nil {
			t.Fatal(err)
		}
	}
	_ = fmt.Sprintf
}
