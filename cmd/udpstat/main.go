// Command udpstat is the operator's terminal view of a running
// udpsimd: it scrapes GET /metrics and GET /v1/jobs and renders queue
// depth, job/cache/store counters with hit rates, latency percentiles
// (queue wait, run duration by mechanism, store and HTTP latency) and
// the currently active jobs.
//
// -addr repeats: with several daemons udpstat shows one status line
// per node plus a fleet-wide aggregate (counters summed sample-by-
// sample, histograms merged before the percentile estimate), which is
// the operator's view of a cluster — coordinator and workers together.
//
// Examples:
//
//	udpstat -addr http://127.0.0.1:8091            one-shot snapshot
//	udpstat -addr http://127.0.0.1:8091 -watch 2s  live view, redrawn every 2s
//	udpstat -addr http://w1:8191 -addr http://w2:8192 -addr http://coord:8190
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"udpsim/internal/serve"
	"udpsim/internal/serve/client"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	if v = strings.TrimSpace(v); v != "" {
		*m = append(*m, strings.TrimRight(v, "/"))
	}
	return nil
}

func main() {
	var addrs multiFlag
	flag.Var(&addrs, "addr", "udpsimd base URL (repeat for a fleet view)")
	var (
		watch   = flag.Duration("watch", 0, "redraw interval (0 = print once and exit)")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		jobsMax = flag.Int("jobs", 8, "max active/recent jobs listed")
	)
	flag.Parse()
	if len(addrs) == 0 {
		addrs = multiFlag{"http://127.0.0.1:8091"}
	}

	clients := make([]*client.Client, len(addrs))
	for i, a := range addrs {
		c := client.New(a, nil)
		c.Name = "udpstat"
		c.Timeout = *timeout
		clients[i] = c
	}

	for {
		var out string
		var err error
		if len(clients) == 1 {
			out, err = snapshot(context.Background(), clients[0], *jobsMax)
		} else {
			out = fleetSnapshot(context.Background(), clients, *jobsMax)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "udpstat: %v\n", err)
			if *watch == 0 {
				os.Exit(1)
			}
		} else {
			if *watch > 0 {
				fmt.Print("\033[H\033[2J") // clear + home, live view
			}
			fmt.Print(out)
		}
		if *watch == 0 {
			return
		}
		time.Sleep(*watch)
	}
}

// snapshot renders one full status screen for a single daemon.
func snapshot(ctx context.Context, c *client.Client, jobsMax int) (string, error) {
	health, err := c.Health(ctx)
	if err != nil {
		return "", fmt.Errorf("health: %w", err)
	}
	samples, err := c.Metrics(ctx)
	if err != nil {
		return "", fmt.Errorf("metrics: %w", err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "udpsimd %s  up %s  status=%s  queue=%d  in-flight-http=%.0f\n",
		c.Base(), (time.Duration(health.UptimeSecs) * time.Second).String(),
		health.Status, health.QueueDepth, sampleVal(samples, "udpsimd_http_in_flight_requests"))
	b.WriteString(counterLines(samples))
	b.WriteString(latencyTable(samples))
	b.WriteString(jobTable(jobs, jobsMax))
	return b.String(), nil
}

// fleetSnapshot renders a multi-node view: one line per node (including
// unreachable ones), then the fleet-wide aggregate over every node
// that answered. Unlike snapshot it never fails outright — a dead node
// is a line in the report, not an error.
func fleetSnapshot(ctx context.Context, clients []*client.Client, jobsMax int) string {
	var b strings.Builder
	var scrapes [][]client.MetricSample
	var allJobs []serve.JobView

	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\tstatus\tup\tqueue\tdone\tfailed\tcache-hit")
	for _, c := range clients {
		health, err := c.Health(ctx)
		if err != nil {
			fmt.Fprintf(tw, "%s\tDOWN\t-\t-\t-\t-\t-\n", c.Base())
			continue
		}
		samples, err := c.Metrics(ctx)
		if err != nil {
			fmt.Fprintf(tw, "%s\t%s\t-\t%d\t-\t-\t(metrics: %v)\n",
				c.Base(), health.Status, health.QueueDepth, err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.0f\t%.0f\t%s\n",
			c.Base(), health.Status,
			(time.Duration(health.UptimeSecs) * time.Second).String(),
			health.QueueDepth,
			sampleVal(samples, "udpsimd_jobs_completed"),
			sampleVal(samples, "udpsimd_jobs_failed"),
			hitRate(sampleVal(samples, "udpsim_cache_hits"), sampleVal(samples, "udpsim_cache_misses")))
		scrapes = append(scrapes, samples)
		if jobs, err := c.Jobs(ctx); err == nil {
			allJobs = append(allJobs, jobs...)
		}
	}
	tw.Flush()

	if len(scrapes) == 0 {
		b.WriteString("no node answered\n")
		return b.String()
	}
	merged := client.MergeScrapes(scrapes...)
	fmt.Fprintf(&b, "fleet (%d/%d nodes):\n", len(scrapes), len(clients))
	b.WriteString(counterLines(merged))
	b.WriteString(latencyTable(merged))
	b.WriteString(jobTable(allJobs, jobsMax))
	return b.String()
}

func sampleVal(samples []client.MetricSample, name string) float64 {
	v, _ := client.MetricValue(samples, name, nil)
	return v
}

func hitRate(hits, misses float64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*hits/(hits+misses))
}

// counterLines renders the jobs / cache / store / cluster counter rows
// shared by the single-node and fleet views.
func counterLines(samples []client.MetricSample) string {
	val := func(name string) float64 { return sampleVal(samples, name) }
	var b strings.Builder
	fmt.Fprintf(&b, "jobs: submitted=%.0f done=%.0f failed=%.0f canceled=%.0f deduped=%.0f coalesced=%.0f rejected=%.0f\n",
		val("udpsimd_jobs_submitted"), val("udpsimd_jobs_completed"),
		val("udpsimd_jobs_failed"), val("udpsimd_jobs_canceled"),
		val("udpsimd_jobs_deduped"), val("udpsimd_jobs_coalesced"),
		val("udpsimd_jobs_rejected"))

	fmt.Fprintf(&b, "cache: hit %s (hits=%.0f misses=%.0f waits=%.0f)   store: hit %s (hits=%.0f misses=%.0f writes=%.0f errors=%.0f cached=%s)\n",
		hitRate(val("udpsim_cache_hits"), val("udpsim_cache_misses")),
		val("udpsim_cache_hits"), val("udpsim_cache_misses"), val("udpsim_cache_inflight_waits"),
		hitRate(val("udpsim_store_hits"), val("udpsim_store_misses")),
		val("udpsim_store_hits"), val("udpsim_store_misses"),
		val("udpsim_store_writes"), val("udpsim_store_errors"),
		fmtBytes(val("udpsim_store_cache_bytes")))

	// Cluster counters appear only once a fleet actually forwards,
	// steals or replicates — a standalone daemon's view stays compact.
	forwarded := val("udpsimd_forwarded_jobs")
	steals := val("udpsimd_steals")
	prHits, prMisses := val("udpsimd_peer_read_hits"), val("udpsimd_peer_read_misses")
	owned := val("udpsimd_ring_owned_keys")
	if forwarded+steals+prHits+prMisses+owned > 0 {
		fmt.Fprintf(&b, "cluster: forwarded=%.0f steals=%.0f peer-read hit %s (hits=%.0f misses=%.0f) owned-keys=%.0f\n",
			forwarded, steals, hitRate(prHits, prMisses), prHits, prMisses, owned)
	}
	return b.String()
}

// fmtBytes renders a byte quantity human-readably.
func fmtBytes(n float64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", n/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", n/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", n/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", n)
	}
}

// fmtUS renders a microsecond quantity human-readably.
func fmtUS(us float64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// latencyTable renders p50/p99 for the service histograms, including
// one row per mechanism of the run-duration family and one per route
// of the HTTP family.
func latencyTable(samples []client.MetricSample) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "latency\tp50\tp99\tcount")
	row := func(label, name string, labels map[string]string) {
		p50, ok := client.HistogramPercentile(samples, name, labels, 0.50)
		if !ok {
			return
		}
		p99, _ := client.HistogramPercentile(samples, name, labels, 0.99)
		count, _ := client.MetricValue(samples, name+"_count", labels)
		fmt.Fprintf(tw, "%s\t≤%s\t≤%s\t%.0f\n", label, fmtUS(p50), fmtUS(p99), count)
	}
	row("queue-wait", "udpsimd_queue_wait_us", nil)
	for _, mech := range labelValues(samples, "udpsimd_run_duration_us_bucket", "mechanism") {
		row("run "+mech, "udpsimd_run_duration_us", map[string]string{"mechanism": mech})
	}
	row("store-read", "udpsim_store_read_us", nil)
	row("store-write", "udpsim_store_write_us", nil)
	for _, route := range labelValues(samples, "udpsimd_http_request_duration_us_bucket", "route") {
		row("http "+route, "udpsimd_http_request_duration_us", map[string]string{"route": route})
	}
	tw.Flush()
	return b.String()
}

// labelValues collects the distinct values of one label across a
// sample family, sorted.
func labelValues(samples []client.MetricSample, name, label string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		if v := s.Labels[label]; v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// jobTable lists running and queued jobs first, then the most recent
// terminal ones, up to max rows.
func jobTable(jobs []serve.JobView, max int) string {
	if len(jobs) == 0 {
		return "no jobs\n"
	}
	active := make([]serve.JobView, 0, len(jobs))
	var finished []serve.JobView
	for _, j := range jobs {
		if j.State.Terminal() {
			finished = append(finished, j)
		} else {
			active = append(active, j)
		}
	}
	sort.Slice(active, func(i, k int) bool { return active[i].Created < active[k].Created })
	sort.Slice(finished, func(i, k int) bool { return finished[i].Finished > finished[k].Finished })
	rows := active
	if len(rows) < max {
		n := max - len(rows)
		if n > len(finished) {
			n = len(finished)
		}
		rows = append(rows, finished[:n]...)
	} else {
		rows = rows[:max]
	}

	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "job\tname\tstate\tclient\tage\ttrace")
	for _, j := range rows {
		age := "-"
		if t, err := time.Parse(time.RFC3339Nano, j.Created); err == nil {
			age = time.Since(t).Round(time.Second).String()
		}
		trace := j.TraceID
		if len(trace) > 12 {
			trace = trace[:12]
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			shorten(j.ID, 12), shorten(j.Name, 24), j.State, shorten(j.Client, 16), age, trace)
	}
	tw.Flush()
	return b.String()
}

func shorten(s string, n int) string {
	if s == "" {
		return "-"
	}
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s
}
