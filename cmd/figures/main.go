// Command figures regenerates the paper's evaluation tables and
// figures, printing the same rows/series the paper plots. Beyond the
// paper set it renders a cycle-resolved timeline figure from the
// observability layer's interval sampler, and long regenerations can
// stream a metrics time series and serve live pprof/expvar progress.
//
// Examples:
//
//	figures -all                 # every figure and table (slow)
//	figures -fig 13              # UDP speedups
//	figures -table 3             # optimal FTQ / utility / timeliness
//	figures -fig 3 -quick        # fast, low-fidelity smoke run
//	figures -fig 16 -workloads xgboost,mysql
//	figures -timeline mysql -svg out/   # IPC + FTQ depth over time
//	figures -all -metrics-out all.jsonl -pprof :6060
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/plot"
	"udpsim/internal/sim"
	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

// logger is the process-wide structured logger (re-created in main once
// the -v flag is parsed).
var logger = obs.NewLogger(os.Stderr, false)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure number to regenerate (1, 3, 4, 5, 6, 8, 11-17)")
		table     = flag.Int("table", 0, "table number to regenerate (1, 2, 3)")
		all       = flag.Bool("all", false, "regenerate everything")
		timeline  = flag.String("timeline", "", "render the interval-sampler timeline figure for this workload (IPC and FTQ depth over time)")
		tlMechs   = flag.String("timeline-mechs", "baseline,udp", "comma-separated mechanisms for -timeline")
		quick     = flag.Bool("quick", false, "low-fidelity fast run")
		instrs    = flag.Uint64("instrs", 0, "override instructions per region")
		warmup    = flag.Uint64("warmup", 0, "override warmup instructions")
		simpoints = flag.Int("simpoints", 0, "override simpoints per app")
		apps      = flag.String("workloads", "", "comma-separated workload subset")
		traceIn   = flag.String("trace", "", "comma-separated recorded trace files (.udpt2) to use as the workload set instead of the synthetic corpus")
		svgDir    = flag.String("svg", "", "also write FigureNN.svg files into this directory")
		parallel  = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS); output is identical at any -j")
		batch     = flag.Bool("batch", false, "lockstep-batch grid cells sharing a workload image (one shared instruction stream per batch; output is byte-identical)")
		verbose   = flag.Bool("v", false, "print per-run progress (debug-level logs)")

		metricsOut = flag.String("metrics-out", "", "stream a per-interval metrics time series for every simulated cell (.csv or .jsonl)")
		interval   = flag.Uint64("interval", 0, "sampling interval in cycles for -metrics-out/-timeline (0 defaults to 10000)")
		pprofAddr  = flag.String("pprof", "", "serve live pprof+expvar on this address (e.g. :6060)")
		listMechs  = flag.Bool("list-mechanisms", false, "list registered prefetch mechanisms and exit")
	)
	flag.Parse()

	if *listMechs {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, d := range sim.MechanismDescriptors() {
			fmt.Fprintf(tw, "%s\t%s\n", d.Name, d.Doc)
		}
		tw.Flush()
		return
	}

	logger = obs.NewLogger(os.Stderr, *verbose)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *pprofAddr != "" {
		_, stopDebug, err := obs.ServeDebug(*pprofAddr, logger)
		if err != nil {
			fatal("pprof listen failed", "addr", *pprofAddr, "err", err)
		}
		defer stopDebug()
	}

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}
	if *instrs > 0 {
		o.Instructions = *instrs
	}
	if *warmup > 0 {
		o.Warmup = *warmup
	}
	if *simpoints > 0 {
		o.Simpoints = *simpoints
	}
	if *apps != "" {
		o.Workloads = strings.Split(*apps, ",")
	}
	if *traceIn != "" {
		o.Workloads = nil
		for _, path := range strings.Split(*traceIn, ",") {
			src, err := trace.LoadSource(strings.TrimSpace(path))
			if err != nil {
				fatal("trace load failed", "path", path, "err", err)
			}
			workload.RegisterSource(src)
			o.Workloads = append(o.Workloads, "trace:"+src.Name())
		}
		// A trace records exactly one region at one salt; multi-simpoint
		// schedules have nothing further to sample.
		o.Simpoints = 1
	}
	o.Parallelism = *parallel
	o.Batch = *batch
	if *verbose {
		o.Progress = func(s string) { logger.Debug("run done", "run", s) }
	}

	if *metricsOut != "" && *interval == 0 {
		*interval = 10_000
	}
	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			fatal("metrics-out create failed", "err", err)
		}
		defer mf.Close()
		o.Metrics = obs.NewMetricsWriter(mf, obs.FormatForPath(*metricsOut))
		o.Interval = *interval
	}

	var figs []int
	var tables []int
	switch {
	case *all:
		figs = []int{1, 3, 4, 5, 6, 8, 11, 12, 13, 14, 15, 16, 17}
		tables = []int{1, 2, 3}
	case *fig != 0:
		figs = []int{*fig}
	case *table != 0:
		tables = []int{*table}
	case *timeline != "":
		// Timeline-only invocation; handled below.
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, t := range tables {
		if err := renderTable(t, o); err != nil {
			fatal("table failed", "table", t, "err", err)
		}
	}
	for _, f := range figs {
		if err := renderFigure(f, o, *svgDir); err != nil {
			fatal("figure failed", "fig", f, "err", err)
		}
	}
	if *timeline != "" {
		if err := renderTimeline(*timeline, strings.Split(*tlMechs, ","), o, *interval, *svgDir); err != nil {
			fatal("timeline failed", "workload", *timeline, "err", err)
		}
	}

	if o.Metrics != nil {
		if err := o.Metrics.Err(); err != nil {
			fatal("metrics write failed", "err", err)
		}
		logger.Info("metrics written", "path", *metricsOut, "rows", o.Metrics.Rows())
	}
}

// saveSVG writes one rendered figure file.
func saveSVG(dir string, n int, svg string) error {
	return saveNamedSVG(dir, fmt.Sprintf("Figure%02d.svg", n), svg)
}

// saveNamedSVG writes one rendered figure file under an explicit name.
func saveNamedSVG(dir, name, svg string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	logger.Info("figure written", "path", path)
	return nil
}

// renderTimeline runs one region per mechanism with the interval
// sampler attached and renders cycle-resolved IPC and FTQ-depth line
// charts — the observability layer's view of how UFTQ window decisions
// and UDP learning play out over a run, which the paper's end-of-run
// aggregates average away.
func renderTimeline(app string, mechs []string, o experiments.Options, interval uint64, svgDir string) error {
	if interval == 0 {
		interval = 10_000
	}
	prof, ok := workload.ByName(app)
	if !ok {
		return fmt.Errorf("unknown workload %q", app)
	}
	type mechSeries struct {
		mech    string
		samples []obs.IntervalSample
	}
	var all []mechSeries
	for _, mech := range mechs {
		mech = strings.TrimSpace(mech)
		cfg := sim.NewConfig(prof, sim.Mechanism(mech))
		cfg.MaxInstructions = o.Instructions
		cfg.WarmupInstructions = o.Warmup
		var obsv *obs.Observer
		attach := func(region int, m *sim.Machine) {
			if region == 0 { // one sampled region per mechanism
				obsv = &obs.Observer{Interval: interval}
				m.AttachObserver(obsv)
			}
		}
		if _, _, err := sim.RunSimpointsObserved(cfg, 1, 1, attach); err != nil {
			return fmt.Errorf("timeline %s/%s: %w", app, mech, err)
		}
		logger.Debug("timeline region done", "mechanism", mech, "samples", len(obsv.Samples()))
		all = append(all, mechSeries{mech: mech, samples: obsv.Samples()})
	}

	// Align series on the shortest run so every chart column has a
	// value for every mechanism (plot.Lines requires equal lengths).
	n := len(all[0].samples)
	for _, s := range all {
		n = min(n, len(s.samples))
	}
	if n == 0 {
		return fmt.Errorf("timeline %s: no interval samples (instrs too small for interval %d?)", app, interval)
	}
	ipc := plot.Chart{Title: fmt.Sprintf("Timeline — %s IPC per %d-cycle interval", app, interval), YLabel: "IPC"}
	ftq := plot.Chart{Title: fmt.Sprintf("Timeline — %s FTQ depth per %d-cycle interval", app, interval), YLabel: "FTQ depth"}
	for i := 0; i < n; i++ {
		lbl := fmt.Sprintf("%dk", all[0].samples[i].Cycle/1000)
		ipc.XLabels = append(ipc.XLabels, lbl)
		ftq.XLabels = append(ftq.XLabels, lbl)
	}
	for _, s := range all {
		iv := make([]float64, n)
		fv := make([]float64, n)
		for i := 0; i < n; i++ {
			iv[i] = s.samples[i].IPC
			fv[i] = float64(s.samples[i].FTQDepth)
		}
		ipc.Series = append(ipc.Series, plot.Series{Name: s.mech, Values: iv})
		ftq.Series = append(ftq.Series, plot.Series{Name: s.mech, Values: fv})
	}

	fmt.Printf("Timeline — %s, %d-cycle intervals (%d samples)\n", app, interval, n)
	tw := newTW()
	fmt.Fprintf(tw, "cycle")
	for _, s := range all {
		fmt.Fprintf(tw, "\t%s IPC\t%s FTQ", s.mech, s.mech)
	}
	fmt.Fprintln(tw)
	step := max(1, n/20) // cap the printed table at ~20 rows
	for i := 0; i < n; i += step {
		fmt.Fprintf(tw, "%d", all[0].samples[i].Cycle)
		for _, s := range all {
			fmt.Fprintf(tw, "\t%.3f\t%d", s.samples[i].IPC, s.samples[i].FTQDepth)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println()

	if svg, err := plot.Lines(ipc); err == nil {
		if err := saveNamedSVG(svgDir, fmt.Sprintf("Timeline-%s-ipc.svg", app), svg); err != nil {
			return err
		}
	}
	if svg, err := plot.Lines(ftq); err == nil {
		if err := saveNamedSVG(svgDir, fmt.Sprintf("Timeline-%s-ftq.svg", app), svg); err != nil {
			return err
		}
	}
	return nil
}

// speedupChart converts rows into the plot package's bar form.
func speedupChart(title string, rows []experiments.SpeedupRow) plot.Chart {
	apps := make([]string, 0, len(rows))
	data := map[string]map[string]float64{}
	for _, r := range rows {
		apps = append(apps, r.App)
		data[r.App] = r.Speedups
	}
	return plot.FromSpeedupRows(title, apps, data)
}

// sweepChart converts sweep series into the plot package's line form.
func sweepChart(title, ylabel string, series []experiments.SweepSeries, percent bool) plot.Chart {
	c := plot.Chart{Title: title, YLabel: ylabel, Percent: percent}
	if len(series) > 0 {
		for _, x := range series[0].X {
			c.XLabels = append(c.XLabels, fmt.Sprintf("%d", x))
		}
	}
	for _, s := range series {
		c.Series = append(c.Series, plot.Series{Name: s.App, Values: s.Values})
	}
	return c
}

// mpkiChart converts MPKI rows into bars.
func mpkiChart(title string, rows []experiments.MPKIRow) plot.Chart {
	apps := make([]string, 0, len(rows))
	data := map[string]map[string]float64{}
	for _, r := range rows {
		apps = append(apps, r.App)
		data[r.App] = r.MPKI
	}
	c := plot.FromSpeedupRows(title, apps, data)
	c.Percent = false
	c.YLabel = "icache MPKI"
	return c
}

// lostChart converts lost-instruction rows into bars.
func lostChart(title string, rows []experiments.LostRow) plot.Chart {
	apps := make([]string, 0, len(rows))
	data := map[string]map[string]float64{}
	for _, r := range rows {
		apps = append(apps, r.App)
		data[r.App] = r.Lost
	}
	c := plot.FromSpeedupRows(title, apps, data)
	c.Percent = false
	c.YLabel = "instructions lost per kilo-instruction"
	return c
}

func renderTable(n int, o experiments.Options) error {
	switch n {
	case 1:
		return renderTable1(o)
	case 2:
		return renderTable2()
	case 3:
		return renderTable3(o)
	default:
		return fmt.Errorf("unknown table %d (have 1, 2, 3)", n)
	}
}

// renderTable1 prints the workload characterization.
func renderTable1(o experiments.Options) error {
	rows, err := experiments.Table1(o)
	if err != nil {
		return err
	}
	fmt.Println("Table I — Workload characterization (synthetic stand-ins)")
	tw := newTW()
	fmt.Fprintln(tw, "Application\tStatic code\tDynamic footprint\tBranches\tTaken\tIcache MPKI\tBranch MPKI\tBaseline IPC")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d KiB\t%d KiB\t%.1f%%\t%.1f%%\t%.1f\t%.1f\t%.3f\n",
			r.App, r.StaticKB, r.DynamicKB, r.BranchPct, r.TakenPct, r.IcacheMPKI, r.BranchMPKI, r.BaselineIPC)
	}
	return tw.Flush()
}

// renderTable2 prints the simulated-system configuration (Table II).
func renderTable2() error {
	cfg := sim.NewConfig(workload.MustByName("mysql"), sim.MechBaseline)
	fmt.Println("Table II — Simulated System")
	tw := newTW()
	rows := [][2]string{
		{"CPU", "Sunny-Cove-like (simulated)"},
		{"Frontend width and retirement", fmt.Sprintf("%d-way", cfg.Width)},
		{"Functional Units", fmt.Sprintf("%d ALU, %d Load, %d Store", cfg.ALUs, cfg.LoadPorts, cfg.StorePorts)},
		{"Branch Predictor", "TAGE-SC-L"},
		{"Branch Target Buffer (BTB)", fmt.Sprintf("%d entries", cfg.BTBEntries)},
		{"Indirect Branch Target Buffer", fmt.Sprintf("%d entries", cfg.IndirectEntries)},
		{"ROB", fmt.Sprintf("%d entries", cfg.ROBSize)},
		{"Reservation Station", fmt.Sprintf("%d entries (unified)", cfg.RSSize)},
		{"Data Prefetcher", "Stream"},
		{"Instruction Prefetcher", "FDIP"},
		{"Load Buffer", fmt.Sprintf("%d entries", cfg.LoadBuffer)},
		{"Store Buffer", fmt.Sprintf("%d entries", cfg.StoreBuffer)},
		{"L1 instruction cache", fmt.Sprintf("%d KiB, %d-way", cfg.ICacheBytes/1024, cfg.ICacheWays)},
		{"L1 data cache", fmt.Sprintf("%d KiB, %d-way", cfg.L1DBytes/1024, cfg.L1DWays)},
		{"L2 unified cache", fmt.Sprintf("%d KiB, %d-way", cfg.L2Bytes/1024, cfg.L2Ways)},
		{"LLC unified cache", fmt.Sprintf("%d MiB, %d-way", cfg.LLCBytes/1024/1024, cfg.LLCWays)},
		{"L1 D-cache latency", fmt.Sprintf("%d cycles", cfg.L1DLatency)},
		{"L1 I-cache latency", "3 cycles (pipelined)"},
		{"L2 latency", fmt.Sprintf("%d cycles", cfg.L2Latency)},
		{"LLC latency", fmt.Sprintf("%d cycles", cfg.LLCLatency)},
		{"Memory", fmt.Sprintf("%d-cycle DRAM, %d-cycle burst occupancy", cfg.DRAMLatency, cfg.DRAMBurstCycles)},
		{"FTQ blocks per cycle", fmt.Sprintf("%d", cfg.BlocksPerCycle)},
		{"FTQ block size", "32 B"},
		{"FTQ depth (baseline)", fmt.Sprintf("%d", cfg.FTQDepth)},
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\n", r[0], r[1])
	}
	return tw.Flush()
}

func renderTable3(o experiments.Options) error {
	rows, corrU, corrT, err := experiments.Table3(o)
	if err != nil {
		return err
	}
	fmt.Println("Table III — Optimal FTQ size, utility and timeliness (FTQ=32)")
	tw := newTW()
	fmt.Fprintln(tw, "Application\tOptimal FTQ\tUtility\tTimeliness")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\n", r.App, r.OptimalFTQ, r.Utility, r.Timeliness)
	}
	fmt.Fprintf(tw, "Correl. Coefficient\t-\t%.2f\t%.2f\n", corrU, corrT)
	return tw.Flush()
}

func renderFigure(n int, o experiments.Options, svgDir string) error {
	switch n {
	case 1:
		rows, err := experiments.Figure1(o)
		if err != nil {
			return err
		}
		printSpeedups("Figure 1 — Perfect icache speedup over FDIP-32 baseline", rows)
		if svg, err := plot.Bars(speedupChart("Figure 1 — Perfect icache speedup over FDIP-32", rows)); err == nil {
			if err := saveSVG(svgDir, 1, svg); err != nil {
				return err
			}
		}
	case 3:
		series, optima, err := experiments.Figure3(o)
		if err != nil {
			return err
		}
		printSweep("Figure 3 — IPC speedup over FTQ=32 across FTQ depths", series, "%+.3f")
		if svg, err := plot.Lines(sweepChart("Figure 3 — IPC speedup over FTQ=32 across FTQ depths", "speedup", series, true)); err == nil {
			if err := saveSVG(svgDir, 3, svg); err != nil {
				return err
			}
		}
		fmt.Println("Per-application optimal FTQ depth:")
		apps := make([]string, 0, len(optima))
		for a := range optima {
			apps = append(apps, a)
		}
		sort.Strings(apps)
		for _, a := range apps {
			fmt.Printf("  %-11s %d\n", a, optima[a])
		}
	case 4:
		series, err := experiments.Figure4(o)
		if err != nil {
			return err
		}
		printSweep("Figure 4 — Timeliness (icache/(icache+fill-buffer)) across FTQ depths", series, "%.3f")
		if svg, err := plot.Lines(sweepChart("Figure 4 — Timeliness across FTQ depths", "icache/(icache+fill-buffer)", series, false)); err == nil {
			if err := saveSVG(svgDir, 4, svg); err != nil {
				return err
			}
		}
	case 5:
		series, err := experiments.Figure5(o)
		if err != nil {
			return err
		}
		printSweep("Figure 5 — On-path prefetch ratio across FTQ depths", series, "%.3f")
		if svg, err := plot.Lines(sweepChart("Figure 5 — On-path prefetch ratio across FTQ depths", "on-path ratio", series, false)); err == nil {
			if err := saveSVG(svgDir, 5, svg); err != nil {
				return err
			}
		}
	case 6:
		series, err := experiments.Figure6(o)
		if err != nil {
			return err
		}
		printSweep("Figure 6 — Prefetch usefulness across FTQ depths", series, "%.3f")
		if svg, err := plot.Lines(sweepChart("Figure 6 — Prefetch usefulness across FTQ depths", "useful ratio", series, false)); err == nil {
			if err := saveSVG(svgDir, 6, svg); err != nil {
				return err
			}
		}
	case 8:
		series, err := experiments.Figure8(o)
		if err != nil {
			return err
		}
		printSweep("Figure 8 — Mean FTQ occupancy across FTQ depths", series, "%.1f")
		if svg, err := plot.Lines(sweepChart("Figure 8 — Mean FTQ occupancy across FTQ depths", "mean occupancy", series, false)); err == nil {
			if err := saveSVG(svgDir, 8, svg); err != nil {
				return err
			}
		}
	case 11:
		rows, optima, err := experiments.Figure11(o)
		if err != nil {
			return err
		}
		printSpeedups("Figure 11 — UFTQ variants vs OPT (IPC speedup over FDIP-32)", rows)
		_ = optima
		if svg, err := plot.Bars(speedupChart("Figure 11 — UFTQ variants vs OPT", rows)); err == nil {
			if err := saveSVG(svgDir, 11, svg); err != nil {
				return err
			}
		}
	case 12:
		rows, err := experiments.Figure12(o)
		if err != nil {
			return err
		}
		printMPKI("Figure 12 — Icache MPKI: baseline vs UFTQ variants vs OPT", rows)
		if svg, err := plot.Bars(mpkiChart("Figure 12 — Icache MPKI: baseline vs UFTQ variants vs OPT", rows)); err == nil {
			if err := saveSVG(svgDir, 12, svg); err != nil {
				return err
			}
		}
	case 13:
		rows, err := experiments.Figure13(o)
		if err != nil {
			return err
		}
		printSpeedups("Figure 13 — UDP / Infinite Storage / EIP-8KB / 40K icache (IPC speedup)", rows)
		if svg, err := plot.Bars(speedupChart("Figure 13 — UDP / Infinite / EIP-8KB / 40K icache", rows)); err == nil {
			if err := saveSVG(svgDir, 13, svg); err != nil {
				return err
			}
		}
	case 14:
		rows, err := experiments.Figure14(o)
		if err != nil {
			return err
		}
		printMPKI("Figure 14 — Icache MPKI across techniques", rows)
		if svg, err := plot.Bars(mpkiChart("Figure 14 — Icache MPKI across techniques", rows)); err == nil {
			if err := saveSVG(svgDir, 14, svg); err != nil {
				return err
			}
		}
	case 15:
		rows, err := experiments.Figure15(o)
		if err != nil {
			return err
		}
		printLost("Figure 15 — Instructions lost to icache misses (per kilo-instruction)", rows)
		if svg, err := plot.Bars(lostChart("Figure 15 — Instructions lost to icache misses", rows)); err == nil {
			if err := saveSVG(svgDir, 15, svg); err != nil {
				return err
			}
		}
	case 16:
		series, err := experiments.Figure16(o)
		if err != nil {
			return err
		}
		printSweep("Figure 16 — UDP speedup across BTB sizes", series, "%+.3f")
		if svg, err := plot.Lines(sweepChart("Figure 16 — UDP speedup across BTB sizes", "speedup", series, true)); err == nil {
			if err := saveSVG(svgDir, 16, svg); err != nil {
				return err
			}
		}
	case 17:
		series, err := experiments.Figure17(o)
		if err != nil {
			return err
		}
		printSweep("Figure 17 — UDP speedup across FTQ sizes", series, "%+.3f")
		if svg, err := plot.Lines(sweepChart("Figure 17 — UDP speedup across FTQ sizes", "speedup", series, true)); err == nil {
			if err := saveSVG(svgDir, 17, svg); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown figure %d (have 1, 3, 4, 5, 6, 8, 11-17)", n)
	}
	return nil
}

func newTW() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func printSpeedups(title string, rows []experiments.SpeedupRow) {
	fmt.Println(title)
	names := experiments.SortedSeriesNames(rows)
	tw := newTW()
	fmt.Fprintf(tw, "app\t%s\n", strings.Join(names, "\t"))
	means := make(map[string]float64)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s", r.App)
		for _, nm := range names {
			fmt.Fprintf(tw, "\t%+.1f%%", r.Speedups[nm]*100)
			means[nm] += r.Speedups[nm]
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "average")
	for _, nm := range names {
		fmt.Fprintf(tw, "\t%+.1f%%", means[nm]/float64(len(rows))*100)
	}
	fmt.Fprintln(tw)
	tw.Flush()
	fmt.Println()
}

func printSweep(title string, series []experiments.SweepSeries, format string) {
	fmt.Println(title)
	tw := newTW()
	if len(series) > 0 {
		fmt.Fprintf(tw, "app")
		for _, x := range series[0].X {
			fmt.Fprintf(tw, "\t%d", x)
		}
		fmt.Fprintln(tw)
	}
	for _, s := range series {
		fmt.Fprintf(tw, "%s", s.App)
		for _, v := range s.Values {
			fmt.Fprintf(tw, "\t"+format, v)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println()
}

func printMPKI(title string, rows []experiments.MPKIRow) {
	fmt.Println(title)
	var names []string
	seen := map[string]bool{}
	for _, r := range rows {
		for k := range r.MPKI {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	tw := newTW()
	fmt.Fprintf(tw, "app\t%s\n", strings.Join(names, "\t"))
	for _, r := range rows {
		fmt.Fprintf(tw, "%s", r.App)
		for _, nm := range names {
			fmt.Fprintf(tw, "\t%.1f", r.MPKI[nm])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println()
}

func printLost(title string, rows []experiments.LostRow) {
	fmt.Println(title)
	var names []string
	seen := map[string]bool{}
	for _, r := range rows {
		for k := range r.Lost {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	tw := newTW()
	fmt.Fprintf(tw, "app\t%s\n", strings.Join(names, "\t"))
	for _, r := range rows {
		fmt.Fprintf(tw, "%s", r.App)
		for _, nm := range names {
			fmt.Fprintf(tw, "\t%.0f", r.Lost[nm])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println()
}
