// Command figures regenerates the paper's evaluation tables and
// figures, printing the same rows/series the paper plots.
//
// Examples:
//
//	figures -all                 # every figure and table (slow)
//	figures -fig 13              # UDP speedups
//	figures -table 3             # optimal FTQ / utility / timeliness
//	figures -fig 3 -quick        # fast, low-fidelity smoke run
//	figures -fig 16 -workloads xgboost,mysql
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"udpsim/internal/experiments"
	"udpsim/internal/plot"
	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure number to regenerate (1, 3, 4, 5, 6, 8, 11-17)")
		table     = flag.Int("table", 0, "table number to regenerate (1, 2, 3)")
		all       = flag.Bool("all", false, "regenerate everything")
		quick     = flag.Bool("quick", false, "low-fidelity fast run")
		instrs    = flag.Uint64("instrs", 0, "override instructions per region")
		warmup    = flag.Uint64("warmup", 0, "override warmup instructions")
		simpoints = flag.Int("simpoints", 0, "override simpoints per app")
		apps      = flag.String("workloads", "", "comma-separated workload subset")
		svgDir    = flag.String("svg", "", "also write FigureNN.svg files into this directory")
		parallel  = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS); output is identical at any -j")
		verbose   = flag.Bool("v", false, "print per-run progress")
	)
	flag.Parse()

	o := experiments.DefaultOptions()
	if *quick {
		o = experiments.QuickOptions()
	}
	if *instrs > 0 {
		o.Instructions = *instrs
	}
	if *warmup > 0 {
		o.Warmup = *warmup
	}
	if *simpoints > 0 {
		o.Simpoints = *simpoints
	}
	if *apps != "" {
		o.Workloads = strings.Split(*apps, ",")
	}
	o.Parallelism = *parallel
	if *verbose {
		o.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}

	var figs []int
	var tables []int
	switch {
	case *all:
		figs = []int{1, 3, 4, 5, 6, 8, 11, 12, 13, 14, 15, 16, 17}
		tables = []int{1, 2, 3}
	case *fig != 0:
		figs = []int{*fig}
	case *table != 0:
		tables = []int{*table}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, t := range tables {
		if err := renderTable(t, o); err != nil {
			fatal(err)
		}
	}
	for _, f := range figs {
		if err := renderFigure(f, o, *svgDir); err != nil {
			fatal(err)
		}
	}
}

// saveSVG writes one rendered figure file.
func saveSVG(dir string, n int, svg string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("Figure%02d.svg", n))
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// speedupChart converts rows into the plot package's bar form.
func speedupChart(title string, rows []experiments.SpeedupRow) plot.Chart {
	apps := make([]string, 0, len(rows))
	data := map[string]map[string]float64{}
	for _, r := range rows {
		apps = append(apps, r.App)
		data[r.App] = r.Speedups
	}
	return plot.FromSpeedupRows(title, apps, data)
}

// sweepChart converts sweep series into the plot package's line form.
func sweepChart(title, ylabel string, series []experiments.SweepSeries, percent bool) plot.Chart {
	c := plot.Chart{Title: title, YLabel: ylabel, Percent: percent}
	if len(series) > 0 {
		for _, x := range series[0].X {
			c.XLabels = append(c.XLabels, fmt.Sprintf("%d", x))
		}
	}
	for _, s := range series {
		c.Series = append(c.Series, plot.Series{Name: s.App, Values: s.Values})
	}
	return c
}

// mpkiChart converts MPKI rows into bars.
func mpkiChart(title string, rows []experiments.MPKIRow) plot.Chart {
	apps := make([]string, 0, len(rows))
	data := map[string]map[string]float64{}
	for _, r := range rows {
		apps = append(apps, r.App)
		data[r.App] = r.MPKI
	}
	c := plot.FromSpeedupRows(title, apps, data)
	c.Percent = false
	c.YLabel = "icache MPKI"
	return c
}

// lostChart converts lost-instruction rows into bars.
func lostChart(title string, rows []experiments.LostRow) plot.Chart {
	apps := make([]string, 0, len(rows))
	data := map[string]map[string]float64{}
	for _, r := range rows {
		apps = append(apps, r.App)
		data[r.App] = r.Lost
	}
	c := plot.FromSpeedupRows(title, apps, data)
	c.Percent = false
	c.YLabel = "instructions lost per kilo-instruction"
	return c
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "figures: %v\n", err)
	os.Exit(1)
}

func renderTable(n int, o experiments.Options) error {
	switch n {
	case 1:
		return renderTable1(o)
	case 2:
		return renderTable2()
	case 3:
		return renderTable3(o)
	default:
		return fmt.Errorf("unknown table %d (have 1, 2, 3)", n)
	}
}

// renderTable1 prints the workload characterization.
func renderTable1(o experiments.Options) error {
	rows, err := experiments.Table1(o)
	if err != nil {
		return err
	}
	fmt.Println("Table I — Workload characterization (synthetic stand-ins)")
	tw := newTW()
	fmt.Fprintln(tw, "Application\tStatic code\tDynamic footprint\tBranches\tTaken\tIcache MPKI\tBranch MPKI\tBaseline IPC")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d KiB\t%d KiB\t%.1f%%\t%.1f%%\t%.1f\t%.1f\t%.3f\n",
			r.App, r.StaticKB, r.DynamicKB, r.BranchPct, r.TakenPct, r.IcacheMPKI, r.BranchMPKI, r.BaselineIPC)
	}
	return tw.Flush()
}

// renderTable2 prints the simulated-system configuration (Table II).
func renderTable2() error {
	cfg := sim.NewConfig(workload.MustByName("mysql"), sim.MechBaseline)
	fmt.Println("Table II — Simulated System")
	tw := newTW()
	rows := [][2]string{
		{"CPU", "Sunny-Cove-like (simulated)"},
		{"Frontend width and retirement", fmt.Sprintf("%d-way", cfg.Width)},
		{"Functional Units", fmt.Sprintf("%d ALU, %d Load, %d Store", cfg.ALUs, cfg.LoadPorts, cfg.StorePorts)},
		{"Branch Predictor", "TAGE-SC-L"},
		{"Branch Target Buffer (BTB)", fmt.Sprintf("%d entries", cfg.BTBEntries)},
		{"Indirect Branch Target Buffer", fmt.Sprintf("%d entries", cfg.IndirectEntries)},
		{"ROB", fmt.Sprintf("%d entries", cfg.ROBSize)},
		{"Reservation Station", fmt.Sprintf("%d entries (unified)", cfg.RSSize)},
		{"Data Prefetcher", "Stream"},
		{"Instruction Prefetcher", "FDIP"},
		{"Load Buffer", fmt.Sprintf("%d entries", cfg.LoadBuffer)},
		{"Store Buffer", fmt.Sprintf("%d entries", cfg.StoreBuffer)},
		{"L1 instruction cache", fmt.Sprintf("%d KiB, %d-way", cfg.ICacheBytes/1024, cfg.ICacheWays)},
		{"L1 data cache", fmt.Sprintf("%d KiB, %d-way", cfg.L1DBytes/1024, cfg.L1DWays)},
		{"L2 unified cache", fmt.Sprintf("%d KiB, %d-way", cfg.L2Bytes/1024, cfg.L2Ways)},
		{"LLC unified cache", fmt.Sprintf("%d MiB, %d-way", cfg.LLCBytes/1024/1024, cfg.LLCWays)},
		{"L1 D-cache latency", fmt.Sprintf("%d cycles", cfg.L1DLatency)},
		{"L1 I-cache latency", "3 cycles (pipelined)"},
		{"L2 latency", fmt.Sprintf("%d cycles", cfg.L2Latency)},
		{"LLC latency", fmt.Sprintf("%d cycles", cfg.LLCLatency)},
		{"Memory", fmt.Sprintf("%d-cycle DRAM, %d-cycle burst occupancy", cfg.DRAMLatency, cfg.DRAMBurstCycles)},
		{"FTQ blocks per cycle", fmt.Sprintf("%d", cfg.BlocksPerCycle)},
		{"FTQ block size", "32 B"},
		{"FTQ depth (baseline)", fmt.Sprintf("%d", cfg.FTQDepth)},
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\n", r[0], r[1])
	}
	return tw.Flush()
}

func renderTable3(o experiments.Options) error {
	rows, corrU, corrT, err := experiments.Table3(o)
	if err != nil {
		return err
	}
	fmt.Println("Table III — Optimal FTQ size, utility and timeliness (FTQ=32)")
	tw := newTW()
	fmt.Fprintln(tw, "Application\tOptimal FTQ\tUtility\tTimeliness")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\n", r.App, r.OptimalFTQ, r.Utility, r.Timeliness)
	}
	fmt.Fprintf(tw, "Correl. Coefficient\t-\t%.2f\t%.2f\n", corrU, corrT)
	return tw.Flush()
}

func renderFigure(n int, o experiments.Options, svgDir string) error {
	switch n {
	case 1:
		rows, err := experiments.Figure1(o)
		if err != nil {
			return err
		}
		printSpeedups("Figure 1 — Perfect icache speedup over FDIP-32 baseline", rows)
		if svg, err := plot.Bars(speedupChart("Figure 1 — Perfect icache speedup over FDIP-32", rows)); err == nil {
			if err := saveSVG(svgDir, 1, svg); err != nil {
				return err
			}
		}
	case 3:
		series, optima, err := experiments.Figure3(o)
		if err != nil {
			return err
		}
		printSweep("Figure 3 — IPC speedup over FTQ=32 across FTQ depths", series, "%+.3f")
		if svg, err := plot.Lines(sweepChart("Figure 3 — IPC speedup over FTQ=32 across FTQ depths", "speedup", series, true)); err == nil {
			if err := saveSVG(svgDir, 3, svg); err != nil {
				return err
			}
		}
		fmt.Println("Per-application optimal FTQ depth:")
		apps := make([]string, 0, len(optima))
		for a := range optima {
			apps = append(apps, a)
		}
		sort.Strings(apps)
		for _, a := range apps {
			fmt.Printf("  %-11s %d\n", a, optima[a])
		}
	case 4:
		series, err := experiments.Figure4(o)
		if err != nil {
			return err
		}
		printSweep("Figure 4 — Timeliness (icache/(icache+fill-buffer)) across FTQ depths", series, "%.3f")
		if svg, err := plot.Lines(sweepChart("Figure 4 — Timeliness across FTQ depths", "icache/(icache+fill-buffer)", series, false)); err == nil {
			if err := saveSVG(svgDir, 4, svg); err != nil {
				return err
			}
		}
	case 5:
		series, err := experiments.Figure5(o)
		if err != nil {
			return err
		}
		printSweep("Figure 5 — On-path prefetch ratio across FTQ depths", series, "%.3f")
		if svg, err := plot.Lines(sweepChart("Figure 5 — On-path prefetch ratio across FTQ depths", "on-path ratio", series, false)); err == nil {
			if err := saveSVG(svgDir, 5, svg); err != nil {
				return err
			}
		}
	case 6:
		series, err := experiments.Figure6(o)
		if err != nil {
			return err
		}
		printSweep("Figure 6 — Prefetch usefulness across FTQ depths", series, "%.3f")
		if svg, err := plot.Lines(sweepChart("Figure 6 — Prefetch usefulness across FTQ depths", "useful ratio", series, false)); err == nil {
			if err := saveSVG(svgDir, 6, svg); err != nil {
				return err
			}
		}
	case 8:
		series, err := experiments.Figure8(o)
		if err != nil {
			return err
		}
		printSweep("Figure 8 — Mean FTQ occupancy across FTQ depths", series, "%.1f")
		if svg, err := plot.Lines(sweepChart("Figure 8 — Mean FTQ occupancy across FTQ depths", "mean occupancy", series, false)); err == nil {
			if err := saveSVG(svgDir, 8, svg); err != nil {
				return err
			}
		}
	case 11:
		rows, optima, err := experiments.Figure11(o)
		if err != nil {
			return err
		}
		printSpeedups("Figure 11 — UFTQ variants vs OPT (IPC speedup over FDIP-32)", rows)
		_ = optima
		if svg, err := plot.Bars(speedupChart("Figure 11 — UFTQ variants vs OPT", rows)); err == nil {
			if err := saveSVG(svgDir, 11, svg); err != nil {
				return err
			}
		}
	case 12:
		rows, err := experiments.Figure12(o)
		if err != nil {
			return err
		}
		printMPKI("Figure 12 — Icache MPKI: baseline vs UFTQ variants vs OPT", rows)
		if svg, err := plot.Bars(mpkiChart("Figure 12 — Icache MPKI: baseline vs UFTQ variants vs OPT", rows)); err == nil {
			if err := saveSVG(svgDir, 12, svg); err != nil {
				return err
			}
		}
	case 13:
		rows, err := experiments.Figure13(o)
		if err != nil {
			return err
		}
		printSpeedups("Figure 13 — UDP / Infinite Storage / EIP-8KB / 40K icache (IPC speedup)", rows)
		if svg, err := plot.Bars(speedupChart("Figure 13 — UDP / Infinite / EIP-8KB / 40K icache", rows)); err == nil {
			if err := saveSVG(svgDir, 13, svg); err != nil {
				return err
			}
		}
	case 14:
		rows, err := experiments.Figure14(o)
		if err != nil {
			return err
		}
		printMPKI("Figure 14 — Icache MPKI across techniques", rows)
		if svg, err := plot.Bars(mpkiChart("Figure 14 — Icache MPKI across techniques", rows)); err == nil {
			if err := saveSVG(svgDir, 14, svg); err != nil {
				return err
			}
		}
	case 15:
		rows, err := experiments.Figure15(o)
		if err != nil {
			return err
		}
		printLost("Figure 15 — Instructions lost to icache misses (per kilo-instruction)", rows)
		if svg, err := plot.Bars(lostChart("Figure 15 — Instructions lost to icache misses", rows)); err == nil {
			if err := saveSVG(svgDir, 15, svg); err != nil {
				return err
			}
		}
	case 16:
		series, err := experiments.Figure16(o)
		if err != nil {
			return err
		}
		printSweep("Figure 16 — UDP speedup across BTB sizes", series, "%+.3f")
		if svg, err := plot.Lines(sweepChart("Figure 16 — UDP speedup across BTB sizes", "speedup", series, true)); err == nil {
			if err := saveSVG(svgDir, 16, svg); err != nil {
				return err
			}
		}
	case 17:
		series, err := experiments.Figure17(o)
		if err != nil {
			return err
		}
		printSweep("Figure 17 — UDP speedup across FTQ sizes", series, "%+.3f")
		if svg, err := plot.Lines(sweepChart("Figure 17 — UDP speedup across FTQ sizes", "speedup", series, true)); err == nil {
			if err := saveSVG(svgDir, 17, svg); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown figure %d (have 1, 3, 4, 5, 6, 8, 11-17)", n)
	}
	return nil
}

func newTW() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func printSpeedups(title string, rows []experiments.SpeedupRow) {
	fmt.Println(title)
	names := experiments.SortedSeriesNames(rows)
	tw := newTW()
	fmt.Fprintf(tw, "app\t%s\n", strings.Join(names, "\t"))
	means := make(map[string]float64)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s", r.App)
		for _, nm := range names {
			fmt.Fprintf(tw, "\t%+.1f%%", r.Speedups[nm]*100)
			means[nm] += r.Speedups[nm]
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "average")
	for _, nm := range names {
		fmt.Fprintf(tw, "\t%+.1f%%", means[nm]/float64(len(rows))*100)
	}
	fmt.Fprintln(tw)
	tw.Flush()
	fmt.Println()
}

func printSweep(title string, series []experiments.SweepSeries, format string) {
	fmt.Println(title)
	tw := newTW()
	if len(series) > 0 {
		fmt.Fprintf(tw, "app")
		for _, x := range series[0].X {
			fmt.Fprintf(tw, "\t%d", x)
		}
		fmt.Fprintln(tw)
	}
	for _, s := range series {
		fmt.Fprintf(tw, "%s", s.App)
		for _, v := range s.Values {
			fmt.Fprintf(tw, "\t"+format, v)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println()
}

func printMPKI(title string, rows []experiments.MPKIRow) {
	fmt.Println(title)
	var names []string
	seen := map[string]bool{}
	for _, r := range rows {
		for k := range r.MPKI {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	tw := newTW()
	fmt.Fprintf(tw, "app\t%s\n", strings.Join(names, "\t"))
	for _, r := range rows {
		fmt.Fprintf(tw, "%s", r.App)
		for _, nm := range names {
			fmt.Fprintf(tw, "\t%.1f", r.MPKI[nm])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println()
}

func printLost(title string, rows []experiments.LostRow) {
	fmt.Println(title)
	var names []string
	seen := map[string]bool{}
	for _, r := range rows {
		for k := range r.Lost {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	sort.Strings(names)
	tw := newTW()
	fmt.Fprintf(tw, "app\t%s\n", strings.Join(names, "\t"))
	for _, r := range rows {
		fmt.Fprintf(tw, "%s", r.App)
		for _, nm := range names {
			fmt.Fprintf(tw, "\t%.0f", r.Lost[nm])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println()
}
