// Command experiment runs a JSON experiment descriptor (the analogue of
// the paper artifact's `./run.sh -e isca.json` workflow) and writes a
// CSV of results plus an optional speedup table. Long grids can stream
// a per-interval metrics time series and serve live pprof/expvar
// progress counters while they run.
//
//	experiment -f configs/isca.json -o results.csv
//	experiment -f configs/isca.json -speedup-base baseline
//	experiment -f configs/isca.json -metrics-out grid.jsonl -pprof :6060
//
// With -cluster the grid fans out across a udpsimd fleet instead of
// simulating in-process: one sub-descriptor per workload, routed to
// the worker owning its shard on the placement ring, with client-side
// failover when a node dies mid-run. The CSV is byte-identical to a
// local run.
//
//	experiment -f configs/isca.json -cluster http://w1:8091,http://w2:8091
//
// With -tune the command runs an autotuning search over a parameter
// space instead of a fixed grid: seeded random sampling, successive
// halving over region budgets, then local refinement around the
// incumbent. Frontier updates stream to stderr; the final best config
// prints as a table. -daemon drives the same search through a
// udpsimd's POST /v1/tune (sharing its dedup store) instead of
// simulating in-process.
//
//	experiment -tune configs/tune-smoke.json
//	experiment -tune configs/tune-smoke.json -daemon http://127.0.0.1:8091
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"text/tabwriter"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/serve/client"
	"udpsim/internal/sim"
)

// runCluster fans the descriptor out across a udpsimd fleet: one
// sub-descriptor per workload, routed by the client-side placement
// ring, with failover to the next ring owner when a node dies.
func runCluster(urls string, d *experiments.Descriptor, log *slog.Logger) ([]experiments.DescriptorResult, error) {
	var nodes []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodes = append(nodes, u)
		}
	}
	fleet, err := client.NewFleet(nodes, nil)
	if err != nil {
		return nil, err
	}
	fleet.Name = "experiment"
	fleet.OnProgress = func(node, line string) {
		log.Debug("cluster progress", "node", node, "line", line)
	}
	log.Info("fanning out across cluster", "nodes", fleet.Nodes())
	return fleet.Run(context.Background(), d, 0)
}

// printMechanisms lists every registered mechanism with its one-line
// doc, straight from the plugin registry.
func printMechanisms() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, d := range sim.MechanismDescriptors() {
		fmt.Fprintf(tw, "%s\t%s\n", d.Name, d.Doc)
	}
	tw.Flush()
}

func main() {
	var (
		file     = flag.String("f", "", "descriptor JSON file")
		out      = flag.String("o", "", "CSV output path (default stdout)")
		base     = flag.String("speedup-base", "", "also print per-workload speedups over this config label")
		parallel = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS); CSV row order is unchanged")
		batch    = flag.Bool("batch", false, "lockstep-batch grid cells sharing a workload image (one shared instruction stream per batch; CSV is byte-identical)")
		cluster  = flag.String("cluster", "", "comma-separated udpsimd base URLs: fan the grid out across the fleet instead of simulating in-process")
		traceIn  = flag.String("trace", "", "comma-separated recorded trace files (.udpt2) appended to the descriptor's trace set; the workload grid becomes these traces when the descriptor names none")
		verbose  = flag.Bool("v", false, "print per-run progress (debug-level logs)")

		tuneFile = flag.String("tune", "", "parameter-space JSON: run an autotuning search over the space instead of a grid")
		daemon   = flag.String("daemon", "", "udpsimd base URL for -tune: drive the search through POST /v1/tune instead of in-process")
		storeDir = flag.String("store", "", "result-store directory for a local -tune run (the acquisition cache; re-probing a known cell costs zero simulations)")

		metricsOut = flag.String("metrics-out", "", "stream a per-interval metrics time series for every simulated cell (.csv or .jsonl)")
		interval   = flag.Uint64("interval", 0, "sampling interval in cycles for -metrics-out (0 with -metrics-out defaults to 10000)")
		pprofAddr  = flag.String("pprof", "", "serve live pprof+expvar on this address (e.g. :6060)")
		listMechs  = flag.Bool("list-mechanisms", false, "list registered prefetch mechanisms and exit")
	)
	flag.Parse()

	if *listMechs {
		printMechanisms()
		return
	}

	log := obs.NewLogger(os.Stderr, *verbose)
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	if *tuneFile != "" {
		runTuneCmd(*tuneFile, *daemon, *storeDir, *parallel, *batch, *verbose, log, fatal)
		return
	}

	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *pprofAddr != "" {
		_, stopDebug, err := obs.ServeDebug(*pprofAddr, log)
		if err != nil {
			fatal("pprof listen failed", "addr", *pprofAddr, "err", err)
		}
		defer stopDebug()
	}

	f, err := os.Open(*file)
	if err != nil {
		fatal("descriptor open failed", "err", err)
	}
	d, err := experiments.ParseDescriptor(f)
	f.Close()
	if err != nil {
		fatal("descriptor parse failed", "err", err)
	}
	if *traceIn != "" {
		raw, err := os.ReadFile(*file)
		if err != nil {
			fatal("descriptor reread failed", "err", err)
		}
		if d, err = experiments.AddDescriptorTraces(raw, *traceIn); err != nil {
			fatal("descriptor trace grafting failed", "err", err)
		}
	}
	if err := experiments.ResolveTraces(d); err != nil {
		fatal("trace resolution failed", "err", err)
	}

	if *cluster != "" && *metricsOut != "" {
		fatal("-metrics-out and -cluster are mutually exclusive (interval samples stay on the daemons)")
	}
	if *cluster != "" && *batch {
		log.Warn("-batch is ignored with -cluster (workers decide their own batching)")
		*batch = false
	}
	if *metricsOut != "" && *interval == 0 {
		*interval = 10_000
	}
	var obsOpts experiments.Options
	obsOpts.Batch = *batch
	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			fatal("metrics-out create failed", "err", err)
		}
		defer mf.Close()
		obsOpts.Metrics = obs.NewMetricsWriter(mf, obs.FormatForPath(*metricsOut))
		obsOpts.Interval = *interval
	}

	var progress func(string)
	if *verbose {
		progress = func(s string) { log.Debug("cell done", "cell", s) }
	}
	log.Info("experiment starting", "name", d.Name,
		"workloads", len(d.Workloads), "configs", len(d.Configs), "simpoints", d.Simpoints)
	var results []experiments.DescriptorResult
	if *cluster != "" {
		results, err = runCluster(*cluster, d, log)
	} else {
		results, err = experiments.RunDescriptorObserved(d, progress, *parallel, obsOpts)
	}
	if err != nil {
		fatal("experiment failed", "err", err)
	}

	if obsOpts.Metrics != nil {
		if err := obsOpts.Metrics.Err(); err != nil {
			fatal("metrics write failed", "err", err)
		}
		log.Info("metrics written", "path", *metricsOut, "rows", obsOpts.Metrics.Rows())
	}

	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal("output create failed", "err", err)
		}
		defer of.Close()
		w = of
	}
	if err := experiments.WriteCSV(w, results); err != nil {
		fatal("CSV write failed", "err", err)
	}

	if *base != "" {
		rows, err := experiments.SpeedupTable(results, *base)
		if err != nil {
			fatal("speedup table failed", "err", err)
		}
		names := experiments.SortedSeriesNames(rows)
		tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "workload\t%s\n", strings.Join(names, "\t"))
		for _, r := range rows {
			fmt.Fprintf(tw, "%s", r.App)
			for _, nm := range names {
				fmt.Fprintf(tw, "\t%+.1f%%", r.Speedups[nm]*100)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
}
