// Command experiment runs a JSON experiment descriptor (the analogue of
// the paper artifact's `./run.sh -e isca.json` workflow) and writes a
// CSV of results plus an optional speedup table.
//
//	experiment -f configs/isca.json -o results.csv
//	experiment -f configs/isca.json -speedup-base baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"udpsim/internal/experiments"
)

func main() {
	var (
		file     = flag.String("f", "", "descriptor JSON file")
		out      = flag.String("o", "", "CSV output path (default stdout)")
		base     = flag.String("speedup-base", "", "also print per-workload speedups over this config label")
		parallel = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS); CSV row order is unchanged")
		verbose  = flag.Bool("v", false, "print per-run progress")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	d, err := experiments.ParseDescriptor(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var progress func(string)
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}
	fmt.Fprintf(os.Stderr, "experiment %q: %d workloads × %d configs × %d simpoints\n",
		d.Name, len(d.Workloads), len(d.Configs), d.Simpoints)
	results, err := experiments.RunDescriptor(d, progress, *parallel)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}
	if err := experiments.WriteCSV(w, results); err != nil {
		fatal(err)
	}

	if *base != "" {
		rows, err := experiments.SpeedupTable(results, *base)
		if err != nil {
			fatal(err)
		}
		names := experiments.SortedSeriesNames(rows)
		tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "workload\t%s\n", strings.Join(names, "\t"))
		for _, r := range rows {
			fmt.Fprintf(tw, "%s", r.App)
			for _, nm := range names {
				fmt.Fprintf(tw, "\t%+.1f%%", r.Speedups[nm]*100)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
	os.Exit(1)
}
