package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"text/tabwriter"

	"udpsim/internal/serve"
	"udpsim/internal/serve/client"
	"udpsim/internal/tune"
)

// runTuneLocal drives the search in-process: the LocalProber evaluates
// probes through the engine (optionally against a disk store as the
// acquisition cache), and frontier events stream to stderr as they
// happen.
func runTuneLocal(sp *tune.Space, storeDir string, parallel int, batch, verbose bool, log *slog.Logger) (*tune.Result, error) {
	prober := &tune.LocalProber{Space: sp, Parallelism: parallel, Batch: batch}
	if storeDir != "" {
		st, err := serve.OpenStore(storeDir, 0, log)
		if err != nil {
			return nil, fmt.Errorf("opening result store: %w", err)
		}
		prober.Store = st
	}
	drv := tune.New(sp, prober)
	drv.OnEvent = func(ev tune.Event) { renderTuneEvent(ev, verbose) }
	return drv.Run(context.Background())
}

// runTuneDaemon submits the space to a udpsimd /v1/tune endpoint and
// follows the run's SSE stream until it finishes.
func runTuneDaemon(sp *tune.Space, raw []byte, daemon string, verbose bool, log *slog.Logger) (*serve.TuneView, error) {
	c := client.New(daemon, nil)
	c.Name = "experiment"
	v, err := c.Tune(context.Background(), raw, client.SubmitOptions{})
	if err != nil {
		return nil, err
	}
	log.Info("tune run submitted", "id", v.ID, "deduped", v.Deduped,
		"space_size", v.SpaceSize, "planned_probes", v.PlannedProbes, "trace", v.TraceID)
	return c.TuneStream(context.Background(), v.ID, 0, func(ev serve.Event) error {
		var te tune.Event
		if json.Unmarshal(ev.Data, &te) == nil && te.Type != "" {
			renderTuneEvent(te, verbose)
		}
		return nil
	})
}

// renderTuneEvent prints one frontier line per driver event. Probe and
// elimination events are verbose-only; generation summaries and
// incumbent updates always print.
func renderTuneEvent(ev tune.Event, verbose bool) {
	switch ev.Type {
	case "incumbent":
		fmt.Fprintf(os.Stderr, "incumbent %s score=%.4f  %s\n", ev.Label, ev.Score, ev.Config)
	case "generation":
		fmt.Fprintf(os.Stderr, "gen %s rung=%d evaluated=%d survivors=%d best=%s score=%.4f probes=%d hits=%d\n",
			ev.Phase, ev.Rung, ev.Evaluated, ev.Survivors, ev.BestLabel, ev.BestScore, ev.Probes, ev.CacheHits)
	case "eliminated":
		if verbose {
			fmt.Fprintf(os.Stderr, "eliminated rung=%d %d candidates: %s\n",
				ev.Rung, len(ev.Eliminated), strings.Join(ev.Eliminated, " "))
		}
	case "probe":
		if verbose {
			fmt.Fprintf(os.Stderr, "probe %s rung=%d score=%.4f  %s\n", ev.Label, ev.Rung, ev.Score, ev.Config)
		}
	}
}

// printTuneTable renders the final best-config table: one row per
// dimension assignment, then the score and probe accounting.
func printTuneTable(sp *tune.Space, config string, score float64, stats tune.Stats, planned int) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "dimension\tvalue\n")
	for _, part := range strings.Fields(config) {
		if name, val, ok := strings.Cut(part, "="); ok {
			fmt.Fprintf(tw, "%s\t%s\n", name, val)
		}
	}
	fmt.Fprintf(tw, "\t\n")
	fmt.Fprintf(tw, "objective\t%s\n", sp.Objective)
	fmt.Fprintf(tw, "score\t%.4f\n", score)
	fmt.Fprintf(tw, "space size\t%d\n", sp.SpaceSize())
	fmt.Fprintf(tw, "probes\t%d (planned %d, refine %d, cache hits %d)\n",
		stats.Probes, planned, stats.RefineProbes, stats.CacheHits)
	fmt.Fprintf(tw, "generations\t%d (incumbent updates %d, eliminated %d)\n",
		stats.Generations, stats.IncumbentUpdates, stats.Eliminated)
	tw.Flush()
}

// runTuneCmd is the `experiment -tune space.json` entry point.
func runTuneCmd(path, daemon, storeDir string, parallel int, batch, verbose bool, log *slog.Logger, fatal func(string, ...any)) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal("space open failed", "err", err)
	}
	sp, err := tune.ParseSpace(strings.NewReader(string(raw)))
	if err != nil {
		fatal("space parse failed", "err", err)
	}
	log.Info("tune starting", "name", sp.Name, "objective", sp.Objective,
		"space_size", sp.SpaceSize(), "planned_probes", sp.PlannedProbes(), "seed", sp.Seed)

	if daemon != "" {
		v, err := runTuneDaemon(sp, raw, daemon, verbose, log)
		if err != nil {
			fatal("tune failed", "err", err)
		}
		if v.State != serve.JobDone || v.Best == nil {
			fatal("tune did not finish", "state", v.State, "run_err", v.Error)
		}
		stats := tune.Stats{}
		if v.Stats != nil {
			stats = *v.Stats
		}
		printTuneTable(sp, v.Best.Config, v.Best.Score, stats, v.PlannedProbes)
		return
	}

	res, err := runTuneLocal(sp, storeDir, parallel, batch, verbose, log)
	if err != nil {
		fatal("tune failed", "err", err)
	}
	printTuneTable(sp, res.Best.Config, res.Best.Score, res.Stats, res.PlannedProbes)
}
