// Command trace records, inspects, converts, and selects simpoints
// from workload traces — the repository's stand-in for the paper's
// DynamoRIO/Intel-PT + SimPoint tooling. Recording defaults to the
// self-contained UDPT2 format (embedded static image, chunked +
// checksummed, gzip binary or JSONL encoding); the profile-bound UDPT1
// format remains readable everywhere and convertible.
//
// Subcommands:
//
//	trace record -workload mysql -instrs 1000000 -o mysql.udpt2
//	trace record -workload mysql -format v1 -o mysql.udpt
//	trace info mysql.udpt2
//	trace inspect -top 10 mysql.udpt2
//	trace convert mysql.udpt mysql.udpt2
//	trace simpoints -k 10 -interval 100000 mysql.udpt2
//	trace replay -mechanism udp mysql.udpt2   # re-simulate from the trace
package main

import (
	"flag"
	"fmt"
	"os"

	"udpsim/internal/sim"
	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "simpoints":
		err = cmdSimpoints(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: trace {record|info|inspect|convert|simpoints|replay} [flags]")
	os.Exit(2)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "mysql", "application to trace")
	instrs := fs.Uint64("instrs", 1_000_000, "instructions to record")
	salt := fs.Uint64("salt", 0, "executor salt (simpoint seed)")
	format := fs.String("format", "v2", "trace format: v2 (self-contained) or v1 (profile-bound)")
	encName := fs.String("enc", "binary", "v2 record encoding: binary or jsonl")
	out := fs.String("o", "", "output file (default <workload>.udpt2, or .udpt for -format v1)")
	fs.Parse(args)

	prof, ok := workload.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown workload %q", *name)
	}
	path := *out
	var write func(f *os.File) error
	switch *format {
	case "v2":
		enc, err := trace.ParseEncoding(*encName)
		if err != nil {
			return err
		}
		if path == "" {
			path = *name + ".udpt2"
		}
		write = func(f *os.File) error { return trace.RecordN2(f, prof, *salt, *instrs, enc) }
	case "v1":
		if path == "" {
			path = *name + ".udpt"
		}
		write = func(f *os.File) error { return trace.RecordN(f, prof, *salt, *instrs) }
	default:
		return fmt.Errorf("unknown format %q (want v1 or v2)", *format)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s (%s, %d KiB, %.2f B/instr)\n",
		*instrs, *name, path, *format, info.Size()/1024, float64(info.Size())/float64(*instrs))
	return nil
}

// traceHandle unifies the two formats behind the analysis surface:
// a record reader plus the trace's program image and identity.
type traceHandle struct {
	r       trace.RecordReader
	prog    *workload.Program
	name    string
	salt    uint64
	version int
	f       *os.File
}

func (h *traceHandle) Close() { h.f.Close() }

// sniffVersion reads the magic without consuming the stream position.
func sniffVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	magic := make([]byte, len(trace.Magic2))
	n, _ := f.Read(magic)
	switch string(magic[:n]) {
	case trace.Magic2:
		return 2, nil
	case trace.Magic:
		return 1, nil
	}
	return 0, fmt.Errorf("%s is not a UDPT trace (magic %q)", path, magic[:n])
}

// openTrace opens a trace of either format, resolving the image: v2
// decodes the embedded image, v1 regenerates it from the named profile.
func openTrace(path string) (*traceHandle, error) {
	ver, err := sniffVersion(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if ver == 2 {
		r, err := trace.NewReader2(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		prog, err := r.Image()
		if err != nil {
			f.Close()
			return nil, err
		}
		return &traceHandle{r: r, prog: prog, name: r.Workload(), salt: r.Salt(), version: 2, f: f}, nil
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	prof, ok := workload.ByName(r.Workload())
	if !ok {
		f.Close()
		return nil, fmt.Errorf("v1 trace references unknown workload %q (convert real traces to v2)", r.Workload())
	}
	if prof.Seed != r.Seed() {
		f.Close()
		return nil, fmt.Errorf("trace seed %#x does not match current %s profile (%#x)",
			r.Seed(), prof.Name, prof.Seed)
	}
	prog, err := sim.SharedImage(prof)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &traceHandle{r: r, prog: prog, name: r.Workload(), salt: r.Salt(), version: 1, f: f}, nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info needs exactly one trace file")
	}
	h, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer h.Close()
	st, err := trace.Analyze(h.prog, h.r)
	if err != nil {
		return err
	}
	fmt.Printf("format     UDPT%d\n", h.version)
	fmt.Printf("workload   %s (salt %d)\n", h.name, h.salt)
	fmt.Printf("image      %s\n", h.prog)
	fmt.Printf("dynamic    %v\n", &st)
	return nil
}

// cmdInspect prints the corpus-triage summary: instruction count,
// branch mix, taken rate, code footprint, and the top-N hot fetch
// blocks. InspectReport does the formatting so tests can pin it.
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	top := fs.Int("top", 10, "number of hot blocks to list")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect needs exactly one trace file")
	}
	h, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer h.Close()
	st, err := trace.Analyze(h.prog, h.r)
	if err != nil {
		return err
	}
	return trace.InspectReport(os.Stdout, h.name, h.prog, &st, *top)
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	encName := fs.String("enc", "binary", "v2 record encoding: binary or jsonl")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("convert needs a v1 input and a v2 output path")
	}
	enc, err := trace.ParseEncoding(*encName)
	if err != nil {
		return err
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(fs.Arg(1))
	if err != nil {
		return err
	}
	defer out.Close()
	if err := trace.ConvertV1(out, in, enc); err != nil {
		return err
	}
	fmt.Printf("converted %s to UDPT2 (%s) at %s\n", fs.Arg(0), enc, fs.Arg(1))
	return nil
}

func cmdSimpoints(args []string) error {
	fs := flag.NewFlagSet("simpoints", flag.ExitOnError)
	k := fs.Int("k", 10, "number of representative regions")
	interval := fs.Uint64("interval", 100_000, "interval length in instructions")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("simpoints needs exactly one trace file")
	}
	h, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer h.Close()
	intervals, err := trace.Intervals(h.r, *interval)
	if err != nil {
		return err
	}
	points := trace.Select(intervals, *k)
	fmt.Printf("%d intervals of %d instructions → %d simpoints:\n",
		len(intervals), *interval, len(points))
	for _, p := range points {
		fmt.Printf("  start %-12d weight %.3f\n", p.Start, p.Weight)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	mech := fs.String("mechanism", "baseline", "prefetch mechanism")
	instrs := fs.Uint64("instrs", 0, "instructions to simulate (0 = trace length minus runahead margin)")
	warmup := fs.Uint64("warmup", 0, "warmup instructions (excluded from stats)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs exactly one trace file")
	}
	path := fs.Arg(0)
	ver, err := sniffVersion(path)
	if err != nil {
		return err
	}
	if ver == 2 {
		return replayV2(path, *mech, *instrs, *warmup)
	}
	return replayV1(path, *mech, *instrs, *warmup)
}

// replayMargin is the oracle-runahead slack a trace must hold beyond
// the simulated region (the frontend fetches ahead of retirement).
const replayMargin = 10_000

// replayLength sizes a run against the trace length.
func replayLength(length, instrs, warmup uint64) (uint64, error) {
	if length < 2*replayMargin+warmup {
		return 0, fmt.Errorf("trace too short to replay (%d records)", length)
	}
	max := length - replayMargin - warmup
	if instrs > 0 && instrs < max {
		max = instrs
	}
	return max, nil
}

func replayV2(path, mech string, instrs, warmup uint64) error {
	src, err := trace.LoadSource(path)
	if err != nil {
		return err
	}
	workload.RegisterSource(src)
	cfg := sim.NewTraceConfig(src.Name(), src.SHA256(), sim.Mechanism(mech))
	cfg.SeedSalt = src.Salt()
	cfg.WarmupInstructions = warmup
	cfg.MaxInstructions, err = replayLength(src.Len(), instrs, warmup)
	if err != nil {
		return err
	}
	m, err := sim.NewMachine(cfg)
	if err != nil {
		return err
	}
	res := m.Run()
	fmt.Printf("replayed %d instructions under %s: IPC %.4f, icache MPKI %.2f\n",
		res.Instructions, res.Mechanism, res.IPC, res.IcacheMPKI)
	return nil
}

func replayV1(path, mech string, instrs, warmup uint64) error {
	h, err := openTrace(path)
	if err != nil {
		return err
	}
	// Count the trace to size the run (leaving the oracle's runahead
	// margin), then reopen for the actual replay.
	var length uint64
	for {
		if _, err := h.r.Read(); err != nil {
			break
		}
		length++
	}
	h.Close()

	cfg := sim.NewConfig(h.prog.Profile(), sim.Mechanism(mech))
	cfg.WarmupInstructions = warmup
	cfg.MaxInstructions, err = replayLength(length, instrs, warmup)
	if err != nil {
		return err
	}

	f2, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f2.Close()
	r2, err := trace.NewReader(f2)
	if err != nil {
		return err
	}
	rp, err := trace.NewReplayer(h.prog, r2)
	if err != nil {
		return err
	}
	m, err := sim.NewMachineWithSource(cfg, h.prog, rp)
	if err != nil {
		return err
	}
	res := m.Run()
	fmt.Printf("replayed %d instructions under %s: IPC %.4f, icache MPKI %.2f\n",
		res.Instructions, res.Mechanism, res.IPC, res.IcacheMPKI)
	return nil
}
