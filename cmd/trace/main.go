// Command trace records, inspects, and selects simpoints from synthetic
// workload traces — the repository's stand-in for the paper's
// DynamoRIO/Intel-PT + SimPoint tooling.
//
// Subcommands:
//
//	trace record -workload mysql -instrs 1000000 -o mysql.udpt
//	trace info mysql.udpt
//	trace simpoints -k 10 -interval 100000 mysql.udpt
//	trace replay mysql.udpt          # re-simulate from the trace
package main

import (
	"flag"
	"fmt"
	"os"

	"udpsim/internal/sim"
	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "simpoints":
		err = cmdSimpoints(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: trace {record|info|simpoints|replay} [flags]")
	os.Exit(2)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "mysql", "application to trace")
	instrs := fs.Uint64("instrs", 1_000_000, "instructions to record")
	salt := fs.Uint64("salt", 0, "executor salt (simpoint seed)")
	out := fs.String("o", "", "output file (default <workload>.udpt)")
	fs.Parse(args)

	prof, ok := workload.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown workload %q", *name)
	}
	path := *out
	if path == "" {
		path = *name + ".udpt"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.RecordN(f, prof, *salt, *instrs); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s (%d KiB, %.2f B/instr)\n",
		*instrs, *name, path, info.Size()/1024, float64(info.Size())/float64(*instrs))
	return nil
}

func openTrace(path string) (*trace.Reader, *workload.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		return nil, nil, err
	}
	prof, ok := workload.ByName(r.Workload())
	if !ok {
		return nil, nil, fmt.Errorf("trace references unknown workload %q", r.Workload())
	}
	if prof.Seed != r.Seed() {
		return nil, nil, fmt.Errorf("trace seed %#x does not match current %s profile (%#x)",
			r.Seed(), prof.Name, prof.Seed)
	}
	prog, err := sim.SharedImage(prof)
	if err != nil {
		return nil, nil, err
	}
	return r, prog, nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info needs exactly one trace file")
	}
	r, prog, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	st, err := trace.Analyze(prog, r)
	if err != nil {
		return err
	}
	fmt.Printf("workload   %s (salt %d)\n", r.Workload(), r.Salt())
	fmt.Printf("image      %s\n", prog)
	fmt.Printf("dynamic    %v\n", &st)
	return nil
}

func cmdSimpoints(args []string) error {
	fs := flag.NewFlagSet("simpoints", flag.ExitOnError)
	k := fs.Int("k", 10, "number of representative regions")
	interval := fs.Uint64("interval", 100_000, "interval length in instructions")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("simpoints needs exactly one trace file")
	}
	r, _, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	intervals, err := trace.Intervals(r, *interval)
	if err != nil {
		return err
	}
	points := trace.Select(intervals, *k)
	fmt.Printf("%d intervals of %d instructions → %d simpoints:\n",
		len(intervals), *interval, len(points))
	for _, p := range points {
		fmt.Printf("  start %-12d weight %.3f\n", p.Start, p.Weight)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	mech := fs.String("mechanism", "baseline", "prefetch mechanism")
	instrs := fs.Uint64("instrs", 0, "instructions to simulate (0 = trace length minus runahead margin)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs exactly one trace file")
	}
	r, prog, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	prof := prog.Profile()
	cfg := sim.NewConfig(prof, sim.Mechanism(*mech))
	cfg.WarmupInstructions = 0

	// Count the trace to size the run (leaving the oracle's runahead
	// margin), then reopen for the actual replay.
	f2, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f2.Close()
	r2, err := trace.NewReader(f2)
	if err != nil {
		return err
	}
	var length uint64
	for {
		if _, err := r.Read(); err != nil {
			break
		}
		length++
	}
	const margin = 10_000
	if length < 2*margin {
		return fmt.Errorf("trace too short to replay (%d records)", length)
	}
	cfg.MaxInstructions = length - margin
	if *instrs > 0 && *instrs < cfg.MaxInstructions {
		cfg.MaxInstructions = *instrs
	}

	rp, err := trace.NewReplayer(prog, r2)
	if err != nil {
		return err
	}
	m, err := sim.NewMachineWithSource(cfg, prog, rp)
	if err != nil {
		return err
	}
	res := m.Run()
	fmt.Printf("replayed %d instructions under %s: IPC %.4f, icache MPKI %.2f\n",
		res.Instructions, res.Mechanism, res.IPC, res.IcacheMPKI)
	return nil
}
