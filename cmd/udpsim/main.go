// Command udpsim runs a single simulation: one workload, one mechanism,
// one configuration. It prints the metrics the paper's figures are
// built from.
//
// Examples:
//
//	udpsim -workload xgboost -mechanism udp
//	udpsim -workload verilator -mechanism baseline -ftq 84 -instrs 5000000
//	udpsim -workload clang -mechanism perfect-icache -simpoints 3
//	udpsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

func main() {
	var (
		name      = flag.String("workload", "mysql", "application to simulate (see -list)")
		mech      = flag.String("mechanism", "baseline", "prefetch mechanism: baseline, no-prefetch, perfect-icache, uftq-aur, uftq-atr, uftq-atr-aur, udp, udp-infinite, eip")
		ftq       = flag.Int("ftq", 32, "FTQ depth (baseline/UDP) or initial depth (UFTQ)")
		btb       = flag.Int("btb", 8192, "BTB entries")
		icache    = flag.Int("icache", 32*1024, "L1I size in bytes")
		instrs    = flag.Uint64("instrs", 2_000_000, "instructions to simulate per simpoint")
		warmup    = flag.Uint64("warmup", 200_000, "warmup instructions (excluded from stats)")
		simpoints = flag.Int("simpoints", 1, "number of simulated regions")
		parallel  = flag.Int("j", 1, "max concurrently simulated regions (0 = GOMAXPROCS)")
		list      = flag.Bool("list", false, "list workloads and exit")
		udpThresh = flag.Int("udp-threshold", 0, "override UDP confidence threshold")
		udpHidden = flag.Bool("udp-hidden", true, "enable UDP hidden-taken-branch trigger")
		btbFill   = flag.Bool("btb-fill", false, "enable predecode BTB fill from prefetched lines (Boomerang-style)")
		verbose   = flag.Bool("v", false, "dump detailed statistics")
	)
	flag.Parse()

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "WORKLOAD\tFUNCS\tFOOTPRINT\tCHARACTER")
		for _, p := range workload.All() {
			prog, err := sim.SharedImage(p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "udpsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(tw, "%s\t%d\t%d KiB\t%s\n", p.Name, p.Funcs,
				prog.FootprintBytes()/1024, character(p))
		}
		tw.Flush()
		return
	}

	prof, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "udpsim: unknown workload %q (use -list)\n", *name)
		os.Exit(1)
	}

	cfg := sim.NewConfig(prof, sim.Mechanism(*mech))
	cfg.FTQDepth = *ftq
	cfg.BTBEntries = *btb
	cfg.ICacheBytes = *icache
	if w := sim.AutoWays(*icache); w > 0 {
		cfg.ICacheWays = w // keeps the set count a power of two for any size
	}
	cfg.MaxInstructions = *instrs
	cfg.WarmupInstructions = *warmup
	if *udpThresh > 0 {
		cfg.UDP.ConfidenceThreshold = *udpThresh
	}
	if !*udpHidden {
		cfg.UDP.HiddenBranchTableBits = 1 // effectively disabled (tiny, never confident)
		cfg.UDP.DisableHiddenTrigger = true
	}
	cfg.PredecodeBTBFill = *btbFill

	results, agg, err := sim.RunSimpointsParallel(cfg, *simpoints, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "udpsim: %v\n", err)
		os.Exit(1)
	}

	if *verbose {
		for i, r := range results {
			fmt.Printf("simpoint %d: %v\n", i, r)
		}
	}
	fmt.Printf("workload      %s\n", agg.Workload)
	fmt.Printf("mechanism     %s\n", agg.Mechanism)
	fmt.Printf("instructions  %d (%d simpoints)\n", agg.Instructions, len(results))
	fmt.Printf("cycles        %d\n", agg.Cycles)
	fmt.Printf("IPC           %.4f\n", agg.IPC)
	fmt.Printf("icache MPKI   %.2f\n", agg.IcacheMPKI)
	fmt.Printf("branch MPKI   %.2f (execute-time recoveries)\n", agg.BranchMPKI)
	fmt.Printf("timeliness    %.3f  (icache hits / (icache+fill-buffer) demand hits)\n", agg.Timeliness)
	fmt.Printf("on-path ratio %.3f  (on-path / all emitted prefetches)\n", agg.OnPathRatio)
	fmt.Printf("usefulness    %.3f  (useful / (useful+useless) prefetches)\n", agg.Usefulness)
	fmt.Printf("mean FTQ occ  %.1f (final depth %d)\n", agg.MeanFTQOcc, agg.FinalFTQDepth)
	fmt.Printf("prefetches    %d emitted (%d on-path, %d off-path, %d dropped)\n",
		agg.PrefetchesEmitted, agg.PrefetchesOnPath, agg.PrefetchesOffPath, agg.PrefetchesDropped)
	fmt.Printf("lost instrs   %.1f per kilo-instruction\n", agg.LostInstrsPKI)
	if agg.UDPStorage > 0 {
		fmt.Printf("UDP storage   %d bytes\n", agg.UDPStorage)
	}
	if *verbose {
		for _, r := range results {
			if r.MechanismSummary != "" {
				fmt.Printf("mechanism     %s\n", r.MechanismSummary)
			}
		}
		fmt.Printf("resolution    mean %.1f cycles, p99 ≤ %d\n", agg.ResolutionMean, agg.ResolutionP99)
		fmt.Printf("frontend      %+v\n", agg.FE)
		fmt.Printf("backend       %+v\n", agg.BE)
	}
}

func character(p workload.Profile) string {
	switch {
	case p.FracBiased < 0.2:
		return "sea of unpredictable branches"
	case p.FracBiased > 0.8:
		return "huge predictable footprint"
	default:
		return "server-class mixed control flow"
	}
}
