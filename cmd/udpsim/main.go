// Command udpsim runs a single simulation: one workload, one mechanism,
// one configuration. It prints the metrics the paper's figures are
// built from, and can stream the run's cycle-level observability: a
// Chrome trace-event JSON (Perfetto-loadable), a per-interval metrics
// time series (CSV/JSONL), and a live pprof/expvar endpoint.
//
// Examples:
//
//	udpsim -workload xgboost -mechanism udp
//	udpsim -workload verilator -mechanism baseline -ftq 84 -instrs 5000000
//	udpsim -workload clang -mechanism perfect-icache -simpoints 3
//	udpsim -workload mysql -trace-out t.json -metrics-out m.csv -interval 10000
//	udpsim -trace mysql.udpt2 -mechanism udp
//	udpsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"text/tabwriter"

	"udpsim/internal/obs"
	"udpsim/internal/sim"
	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

func main() {
	var (
		name      = flag.String("workload", "mysql", "application to simulate (see -list)")
		traceIn   = flag.String("trace", "", "replay a recorded trace file (.udpt2) instead of -workload")
		mech      = flag.String("mechanism", "baseline", "prefetch mechanism: "+sim.MechanismNames()+" (see -list-mechanisms)")
		ftq       = flag.Int("ftq", 32, "FTQ depth (baseline/UDP) or initial depth (UFTQ)")
		btb       = flag.Int("btb", 8192, "BTB entries")
		icache    = flag.Int("icache", 32*1024, "L1I size in bytes")
		instrs    = flag.Uint64("instrs", 2_000_000, "instructions to simulate per simpoint")
		warmup    = flag.Uint64("warmup", 200_000, "warmup instructions (excluded from stats)")
		simpoints = flag.Int("simpoints", 1, "number of simulated regions")
		parallel  = flag.Int("j", 1, "max concurrently simulated regions (0 = GOMAXPROCS)")
		list      = flag.Bool("list", false, "list workloads and exit")
		listMechs = flag.Bool("list-mechanisms", false, "list registered prefetch mechanisms and exit")
		udpThresh = flag.Int("udp-threshold", 0, "override UDP confidence threshold")
		udpHidden = flag.Bool("udp-hidden", true, "enable UDP hidden-taken-branch trigger")
		btbFill   = flag.Bool("btb-fill", false, "enable predecode BTB fill from prefetched lines (Boomerang-style)")
		verbose   = flag.Bool("v", false, "dump detailed statistics (and debug-level logs)")

		// Observability.
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of the measured region (load in Perfetto)")
		traceCap   = flag.Int("trace-cap", 0, "event ring capacity per region (0 = default 1Mi events)")
		metricsOut = flag.String("metrics-out", "", "write a per-interval metrics time series (.csv, or .jsonl/.json for JSON lines)")
		interval   = flag.Uint64("interval", 0, "sampling interval in cycles for -metrics-out (0 with -metrics-out defaults to 10000)")
		pprofAddr  = flag.String("pprof", "", "serve live pprof+expvar on this address (e.g. :6060)")
	)
	flag.Parse()

	log := obs.NewLogger(os.Stderr, *verbose)
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	if *pprofAddr != "" {
		_, stopDebug, err := obs.ServeDebug(*pprofAddr, log)
		if err != nil {
			fatal("pprof listen failed", "addr", *pprofAddr, "err", err)
		}
		defer stopDebug()
	}

	if *listMechs {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, d := range sim.MechanismDescriptors() {
			fmt.Fprintf(tw, "%s\t%s\n", d.Name, d.Doc)
		}
		tw.Flush()
		return
	}

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "WORKLOAD\tFUNCS\tFOOTPRINT\tCHARACTER")
		for _, p := range workload.All() {
			prog, err := sim.SharedImage(p)
			if err != nil {
				fatal("workload image failed", "workload", p.Name, "err", err)
			}
			fmt.Fprintf(tw, "%s\t%d\t%d KiB\t%s\n", p.Name, p.Funcs,
				prog.FootprintBytes()/1024, character(p))
		}
		tw.Flush()
		return
	}

	var cfg sim.Config
	if *traceIn != "" {
		src, err := trace.LoadSource(*traceIn)
		if err != nil {
			fatal("trace load failed", "path", *traceIn, "err", err)
		}
		workload.RegisterSource(src)
		cfg = sim.NewTraceConfig(src.Name(), src.SHA256(), sim.Mechanism(*mech))
		if *simpoints > 1 {
			// A trace records exactly one region; there is nothing to
			// re-seed a second simpoint from.
			fatal("-simpoints must be 1 when replaying a trace", "simpoints", *simpoints)
		}
		// The frontend runs ahead of retirement, so leave slack at the
		// tail of the recording; clamp -instrs instead of panicking
		// mid-run on a short trace.
		const margin = 10_000
		if uint64(src.Len()) < *warmup+*instrs+margin {
			avail := uint64(src.Len())
			if avail <= *warmup+margin {
				fatal("trace too short for -warmup", "records", src.Len(), "warmup", *warmup)
			}
			*instrs = avail - *warmup - margin
			log.Info("trace shorter than requested run; clamping -instrs",
				"records", src.Len(), "instrs", *instrs)
		}
	} else {
		prof, ok := workload.ByName(*name)
		if !ok {
			fatal("unknown workload (use -list)", "workload", *name)
		}
		cfg = sim.NewConfig(prof, sim.Mechanism(*mech))
	}
	cfg.FTQDepth = *ftq
	cfg.BTBEntries = *btb
	cfg.ICacheBytes = *icache
	if w := sim.AutoWays(*icache); w > 0 {
		cfg.ICacheWays = w // keeps the set count a power of two for any size
	}
	cfg.MaxInstructions = *instrs
	cfg.WarmupInstructions = *warmup
	if *udpThresh > 0 {
		cfg.UDP.ConfidenceThreshold = *udpThresh
	}
	if !*udpHidden {
		cfg.UDP.HiddenBranchTableBits = 1 // effectively disabled (tiny, never confident)
		cfg.UDP.DisableHiddenTrigger = true
	}
	cfg.PredecodeBTBFill = *btbFill

	// Observability wiring: one observer per region (observers are
	// single-machine), fanned into shared sinks.
	if *metricsOut != "" && *interval == 0 {
		*interval = 10_000
		log.Debug("defaulting -interval", "cycles", *interval)
	}
	var metrics *obs.MetricsWriter
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal("metrics-out create failed", "err", err)
		}
		defer f.Close()
		metrics = obs.NewMetricsWriter(f, obs.FormatForPath(*metricsOut))
	}
	observing := *traceOut != "" || metrics != nil || *interval > 0
	var (
		obsMu     sync.Mutex
		observers = map[int]*obs.Observer{}
		attach    func(int, *sim.Machine)
	)
	if observing {
		attach = func(region int, m *sim.Machine) {
			o := &obs.Observer{Life: obs.NewLifecycle(), Interval: *interval}
			if *traceOut != "" {
				o.Trace = obs.NewTracer(*traceCap)
			}
			if metrics != nil {
				o.OnSample = func(s obs.IntervalSample) { _ = metrics.Write(s) }
			}
			m.AttachObserver(o)
			obsMu.Lock()
			observers[region] = o
			obsMu.Unlock()
		}
	}

	log.Debug("simulation starting", "workload", *name, "mechanism", *mech,
		"simpoints", *simpoints, "instrs", *instrs)
	results, agg, err := sim.RunSimpointsObserved(cfg, *simpoints, *parallel, attach)
	if err != nil {
		fatal("simulation failed", "err", err)
	}

	if metrics != nil {
		if err := metrics.Err(); err != nil {
			fatal("metrics write failed", "err", err)
		}
		log.Info("metrics written", "path", *metricsOut, "rows", metrics.Rows())
	}
	if *traceOut != "" {
		var regions []obs.TraceRegion
		var events int
		var dropped uint64
		for i := 0; i < len(results); i++ {
			o := observers[i]
			if o == nil || o.Trace == nil {
				continue
			}
			regions = append(regions, obs.TraceRegion{
				Workload: agg.Workload, Mechanism: string(agg.Mechanism),
				Region: i, Events: o.Trace.Events(),
			})
			events += o.Trace.Len()
			dropped += o.Trace.Dropped()
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal("trace-out create failed", "err", err)
		}
		if err := obs.WriteChromeTrace(f, regions); err != nil {
			fatal("trace write failed", "err", err)
		}
		if err := f.Close(); err != nil {
			fatal("trace close failed", "err", err)
		}
		log.Info("trace written", "path", *traceOut, "events", events, "overwritten", dropped)
	}

	if *verbose {
		for i, r := range results {
			fmt.Printf("simpoint %d: %v\n", i, r)
		}
	}
	fmt.Printf("workload      %s\n", agg.Workload)
	fmt.Printf("mechanism     %s\n", agg.Mechanism)
	fmt.Printf("instructions  %d (%d simpoints)\n", agg.Instructions, len(results))
	fmt.Printf("cycles        %d\n", agg.Cycles)
	fmt.Printf("IPC           %.4f\n", agg.IPC)
	fmt.Printf("icache MPKI   %.2f\n", agg.IcacheMPKI)
	fmt.Printf("branch MPKI   %.2f (execute-time recoveries)\n", agg.BranchMPKI)
	fmt.Printf("timeliness    %.3f  (icache hits / (icache+fill-buffer) demand hits)\n", agg.Timeliness)
	fmt.Printf("on-path ratio %.3f  (on-path / all emitted prefetches)\n", agg.OnPathRatio)
	fmt.Printf("usefulness    %.3f  (useful / (useful+useless) prefetches)\n", agg.Usefulness)
	fmt.Printf("mean FTQ occ  %.1f (final depth %d)\n", agg.MeanFTQOcc, agg.FinalFTQDepth)
	fmt.Printf("prefetches    %d emitted (%d on-path, %d off-path, %d dropped)\n",
		agg.PrefetchesEmitted, agg.PrefetchesOnPath, agg.PrefetchesOffPath, agg.PrefetchesDropped)
	fmt.Printf("lost instrs   %.1f per kilo-instruction\n", agg.LostInstrsPKI)
	if agg.Lifecycle.Tracked {
		fmt.Printf("lifecycle     %s\n", agg.Lifecycle)
	}
	if agg.UDPStorage > 0 {
		fmt.Printf("UDP storage   %d bytes\n", agg.UDPStorage)
	}
	if *verbose {
		for _, r := range results {
			if r.MechanismSummary != "" {
				fmt.Printf("mechanism     %s\n", r.MechanismSummary)
			}
		}
		fmt.Printf("resolution    mean %.1f cycles, p99 ≤ %d\n", agg.ResolutionMean, agg.ResolutionP99)
		fmt.Printf("frontend      %+v\n", agg.FE)
		fmt.Printf("backend       %+v\n", agg.BE)
	}
}

func character(p workload.Profile) string {
	switch {
	case p.FracBiased < 0.2:
		return "sea of unpredictable branches"
	case p.FracBiased > 0.8:
		return "huge predictable footprint"
	default:
		return "server-class mixed control flow"
	}
}
