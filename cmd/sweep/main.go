// Command sweep runs parameter sweeps over FTQ depth, BTB size, or
// icache size for one workload and mechanism, printing a CSV-ish table
// suitable for plotting.
//
// Examples:
//
//	sweep -workload verilator -param ftq
//	sweep -workload xgboost -param btb -mechanism udp
//	sweep -workload mysql -param icache -values 16384,32768,65536
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"udpsim/internal/experiments"
	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "mysql", "application to simulate")
		mech     = flag.String("mechanism", "baseline", "prefetch mechanism")
		param    = flag.String("param", "ftq", "swept parameter: ftq, btb, icache")
		values   = flag.String("values", "", "comma-separated sweep values (defaults per param)")
		instrs   = flag.Uint64("instrs", 500_000, "instructions per run")
		warmup   = flag.Uint64("warmup", 500_000, "warmup instructions")
		parallel = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS); CSV row order is unchanged")
	)
	flag.Parse()

	prof, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown workload %q\n", *name)
		os.Exit(1)
	}

	grid, err := parseGrid(*param, *values)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}

	prog, err := sim.SharedImage(prof)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}

	// Run the whole grid on a bounded worker pool; results land in
	// grid order so the CSV is identical at any -j.
	results := make([]sim.Result, len(grid))
	err = experiments.ForEach(len(grid), *parallel, func(i int) error {
		cfg := sim.NewConfig(prof, sim.Mechanism(*mech))
		cfg.MaxInstructions = *instrs
		cfg.WarmupInstructions = *warmup
		applyParam(&cfg, *param, grid[i])
		m, err := sim.NewMachineWithProgram(cfg, prog)
		if err != nil {
			return fmt.Errorf("value %d: %w", grid[i], err)
		}
		results[i] = m.Run()
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("# workload=%s mechanism=%s param=%s\n", *name, *mech, *param)
	fmt.Println("value,ipc,icache_mpki,timeliness,onpath_ratio,usefulness,mean_ftq_occ,lost_pki")
	for i, v := range grid {
		r := results[i]
		fmt.Printf("%d,%.4f,%.2f,%.3f,%.3f,%.3f,%.1f,%.0f\n",
			v, r.IPC, r.IcacheMPKI, r.Timeliness, r.OnPathRatio, r.Usefulness, r.MeanFTQOcc, r.LostInstrsPKI)
	}
}

func parseGrid(param, values string) ([]int, error) {
	if values != "" {
		var out []int
		for _, s := range strings.Split(values, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad value %q: %v", s, err)
			}
			out = append(out, v)
		}
		return out, nil
	}
	switch param {
	case "ftq":
		return []int{8, 12, 16, 24, 32, 48, 64, 96, 128}, nil
	case "btb":
		return []int{1024, 2048, 4096, 8192, 16384}, nil
	case "icache":
		return []int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024}, nil
	default:
		return nil, fmt.Errorf("unknown param %q (ftq, btb, icache)", param)
	}
}

func applyParam(cfg *sim.Config, param string, v int) {
	switch param {
	case "ftq":
		cfg.FTQDepth = v
	case "btb":
		cfg.BTBEntries = v
	case "icache":
		cfg.ICacheBytes = v
		// Pick the associativity automatically so non-power-of-two
		// sizes (40 KiB, 48 KiB, ...) keep a power-of-two set count;
		// sim.NewMachineWithProgram rejects invalid geometries.
		if w := sim.AutoWays(v); w > 0 {
			cfg.ICacheWays = w
		}
	}
}
