// Command sweep runs parameter sweeps over FTQ depth, BTB size, or
// icache size for one workload and mechanism, printing a CSV-ish table
// suitable for plotting.
//
// Examples:
//
//	sweep -workload verilator -param ftq
//	sweep -workload xgboost -param btb -mechanism udp
//	sweep -workload mysql -param icache -values 16384,32768,65536
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"udpsim/internal/experiments"
	"udpsim/internal/obs"
	"udpsim/internal/sim"
	"udpsim/internal/trace"
	"udpsim/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "mysql", "application to simulate")
		traceIn  = flag.String("trace", "", "sweep over a recorded trace file (.udpt2) instead of -workload")
		mech     = flag.String("mechanism", "baseline", "prefetch mechanism")
		param    = flag.String("param", "ftq", "swept parameter: ftq, btb, icache")
		values   = flag.String("values", "", "comma-separated sweep values (defaults per param)")
		instrs   = flag.Uint64("instrs", 500_000, "instructions per run")
		warmup   = flag.Uint64("warmup", 500_000, "warmup instructions")
		parallel = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS); CSV row order is unchanged")
		batch    = flag.Bool("batch", false, "lockstep-batch the sweep over one shared instruction stream (CSV is byte-identical)")
		verbose  = flag.Bool("v", false, "debug-level progress logs")

		metricsOut = flag.String("metrics-out", "", "stream a per-interval metrics time series for every swept run (.csv or .jsonl)")
		interval   = flag.Uint64("interval", 0, "sampling interval in cycles for -metrics-out (0 with -metrics-out defaults to 10000)")
		pprofAddr  = flag.String("pprof", "", "serve live pprof+expvar on this address (e.g. :6060)")
	)
	flag.Parse()

	log := obs.NewLogger(os.Stderr, *verbose)
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	if *pprofAddr != "" {
		_, stopDebug, err := obs.ServeDebug(*pprofAddr, log)
		if err != nil {
			fatal("pprof listen failed", "addr", *pprofAddr, "err", err)
		}
		defer stopDebug()
	}

	var (
		baseConfig func(sim.Mechanism) sim.Config
		prog       *workload.Program
	)
	if *traceIn != "" {
		src, err := trace.LoadSource(*traceIn)
		if err != nil {
			fatal("trace load failed", "path", *traceIn, "err", err)
		}
		workload.RegisterSource(src)
		*name = src.Name()
		const margin = 150_000 // lockstep tapes run well ahead of retirement
		if uint64(src.Len()) < *warmup+*instrs+margin {
			avail := uint64(src.Len())
			if avail <= *warmup+margin {
				fatal("trace too short for -warmup", "records", src.Len(), "warmup", *warmup)
			}
			*instrs = avail - *warmup - margin
			log.Info("trace shorter than requested run; clamping -instrs", "instrs", *instrs)
		}
		baseConfig = func(m sim.Mechanism) sim.Config {
			return sim.NewTraceConfig(src.Name(), src.SHA256(), m)
		}
		prog, err = src.Image()
		if err != nil {
			fatal("trace image failed", "err", err)
		}
	} else {
		prof, ok := workload.ByName(*name)
		if !ok {
			fatal("unknown workload", "workload", *name)
		}
		baseConfig = func(m sim.Mechanism) sim.Config {
			return sim.NewConfig(prof, m)
		}
		var err error
		prog, err = sim.SharedImage(prof)
		if err != nil {
			fatal("workload image failed", "err", err)
		}
	}

	grid, err := parseGrid(*param, *values)
	if err != nil {
		fatal("bad sweep grid", "err", err)
	}

	if *metricsOut != "" && *interval == 0 {
		*interval = 10_000
	}
	var metrics *obs.MetricsWriter
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal("metrics-out create failed", "err", err)
		}
		defer f.Close()
		metrics = obs.NewMetricsWriter(f, obs.FormatForPath(*metricsOut))
	}

	cellConfig := func(i int) sim.Config {
		cfg := baseConfig(sim.Mechanism(*mech))
		cfg.MaxInstructions = *instrs
		cfg.WarmupInstructions = *warmup
		applyParam(&cfg, *param, grid[i])
		return cfg
	}
	// One observer per machine; the metrics writer serializes the
	// concurrently swept runs. The swept value is stamped into the
	// salt column so rows stay attributable.
	attach := func(i int, m *sim.Machine) {
		if metrics == nil {
			return
		}
		o := &obs.Observer{
			Interval: *interval,
			OnSample: func(s obs.IntervalSample) { _ = metrics.Write(s) },
		}
		m.AttachObserver(o)
		o.Salt = uint64(grid[i])
	}

	// Run the whole grid; results land in grid order so the CSV is
	// identical at any -j, batched or not.
	results := make([]sim.Result, len(grid))
	if *batch {
		// Lockstep mode: every swept machine reads one shared tape of
		// the workload's architectural stream instead of re-executing
		// it per cell.
		cfgs := make([]sim.Config, len(grid))
		for i := range grid {
			cfgs[i] = cellConfig(i)
		}
		res, errs := sim.RunBatchCtx(nil, cfgs, *parallel, attach)
		for i, e := range errs {
			if e != nil {
				err = fmt.Errorf("value %d: %w", grid[i], e)
				break
			}
			results[i] = res[i]
			log.Debug("sweep cell done", "param", *param, "value", grid[i], "ipc", results[i].IPC)
		}
	} else {
		err = experiments.ForEach(len(grid), *parallel, func(i int) error {
			m, err := sim.NewMachineWithProgram(cellConfig(i), prog)
			if err != nil {
				return fmt.Errorf("value %d: %w", grid[i], err)
			}
			attach(i, m)
			results[i] = m.Run()
			log.Debug("sweep cell done", "param", *param, "value", grid[i], "ipc", results[i].IPC)
			return nil
		})
	}
	if err != nil {
		fatal("sweep failed", "err", err)
	}
	if metrics != nil {
		if err := metrics.Err(); err != nil {
			fatal("metrics write failed", "err", err)
		}
		log.Info("metrics written", "path", *metricsOut, "rows", metrics.Rows())
	}

	fmt.Printf("# workload=%s mechanism=%s param=%s\n", *name, *mech, *param)
	fmt.Println("value,ipc,icache_mpki,timeliness,onpath_ratio,usefulness,mean_ftq_occ,lost_pki")
	for i, v := range grid {
		r := results[i]
		fmt.Printf("%d,%.4f,%.2f,%.3f,%.3f,%.3f,%.1f,%.0f\n",
			v, r.IPC, r.IcacheMPKI, r.Timeliness, r.OnPathRatio, r.Usefulness, r.MeanFTQOcc, r.LostInstrsPKI)
	}
}

func parseGrid(param, values string) ([]int, error) {
	if values != "" {
		var out []int
		for _, s := range strings.Split(values, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad value %q: %v", s, err)
			}
			out = append(out, v)
		}
		return out, nil
	}
	switch param {
	case "ftq":
		return []int{8, 12, 16, 24, 32, 48, 64, 96, 128}, nil
	case "btb":
		return []int{1024, 2048, 4096, 8192, 16384}, nil
	case "icache":
		return []int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024}, nil
	default:
		return nil, fmt.Errorf("unknown param %q (ftq, btb, icache)", param)
	}
}

func applyParam(cfg *sim.Config, param string, v int) {
	switch param {
	case "ftq":
		cfg.FTQDepth = v
	case "btb":
		cfg.BTBEntries = v
	case "icache":
		cfg.ICacheBytes = v
		// Pick the associativity automatically so non-power-of-two
		// sizes (40 KiB, 48 KiB, ...) keep a power-of-two set count;
		// sim.NewMachineWithProgram rejects invalid geometries.
		if w := sim.AutoWays(v); w > 0 {
			cfg.ICacheWays = w
		}
	}
}
