// Command udpsimd is the simulation-as-a-service daemon: it accepts
// experiment-descriptor JSON over HTTP, schedules jobs on a bounded
// priority/fair queue, runs them through the memoized experiment
// engine, persists results in a content-addressed on-disk store, and
// streams per-cell progress plus per-interval metrics over SSE.
//
// Examples:
//
//	udpsimd -addr :8091 -store /var/lib/udpsim/results
//	udpsimd -addr 127.0.0.1:8091 -workers 2 -j 4 -queue 128
//
// Cluster operation (see README "Running a cluster"):
//
//	# two workers that replicate results to each other over the ring
//	udpsimd -addr :8191 -store w1 -self http://127.0.0.1:8191 -peers http://127.0.0.1:8192
//	udpsimd -addr :8192 -store w2 -self http://127.0.0.1:8192 -peers http://127.0.0.1:8191
//	# a coordinator that shards jobs across them
//	udpsimd -addr :8190 -coordinator -workers http://127.0.0.1:8191,http://127.0.0.1:8192
//
// Endpoints (see EXPERIMENTS.md for the full API reference):
//
//	POST   /v1/jobs              submit an experiment descriptor
//	GET    /v1/jobs              list jobs (paged: ?limit= and ?after=)
//	GET    /v1/jobs/{id}         job status (cells + result keys)
//	GET    /v1/jobs/{id}/events  SSE stream (progress, samples, terminal)
//	POST   /v1/tune              submit a parameter-space search (autotuning)
//	GET    /v1/tune/{id}         tune-run status (stats + incumbent)
//	GET    /v1/tune/{id}/events  SSE stream (probes, generations, incumbents)
//	GET    /v1/results/{key}     content-addressed result record
//	PUT    /v1/results/{key}     peer replication write-back
//	GET    /v1/ring              placement ring / membership view
//	GET    /healthz /readyz      health; readiness flips 503 on drain
//	GET    /debug/vars           expvar (queue depth, dedup, store hits)
//
// SIGTERM/SIGINT drain gracefully: admission stops, queued jobs are
// canceled, running jobs finish (bounded by -drain-timeout), results
// are persisted, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"udpsim/internal/obs"
	"udpsim/internal/serve"
	"udpsim/internal/serve/cluster"
	"udpsim/internal/serve/placement"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8091", "HTTP listen address")
		storeDir     = flag.String("store", "", "content-addressed result store directory (empty = in-memory only)")
		workersFlag  = flag.String("workers", "1", "jobs run concurrently; with -coordinator, the comma-separated worker base URLs instead")
		coordinator  = flag.Bool("coordinator", false, "forward jobs to the -workers fleet by ring ownership instead of simulating locally")
		self         = flag.String("self", "", "this node's advertised base URL (cluster mode; e.g. http://10.0.0.5:8091)")
		peersFlag    = flag.String("peers", "", "comma-separated peer daemon URLs; with -self, joins their placement ring and replicates results (worker cluster mode)")
		parallel     = flag.Int("j", 0, "per-job grid-cell concurrency (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "max queued jobs before 429")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job runtime cap (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "graceful-shutdown budget for running jobs")
		interval     = flag.Uint64("interval", 10_000, "SSE metrics sampling interval in cycles (0 disables samples)")
		batch        = flag.Bool("batch", false, "lockstep-batch grid cells sharing a workload image and coalesce queued jobs that share one (results are byte-identical)")
		coalesce     = flag.Int("coalesce", 4, "max queued jobs merged into one batched run (with -batch)")
		storeCacheMB = flag.Int("store-cache-mb", int(serve.DefaultCacheBytes>>20), "in-memory store read cache budget in MiB")
		pprofAddr    = flag.String("pprof", "", "serve live pprof+expvar+metrics on this extra address (e.g. :6060)")
		traceOut     = flag.String("trace-out", "", "write the session's job-lifecycle spans as Chrome trace JSON to this file at shutdown (load in Perfetto)")
		verbose      = flag.Bool("v", false, "debug-level logs")
	)
	flag.Parse()

	log := obs.NewLogger(os.Stderr, *verbose)
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	// -workers is overloaded: a job-concurrency count normally, the
	// worker fleet's URLs under -coordinator.
	workers := 1
	var workerURLs []string
	if *coordinator {
		workerURLs = splitList(*workersFlag)
		if len(workerURLs) == 0 || workerURLs[0] == "1" {
			fatal("-coordinator requires -workers to list worker URLs (comma-separated)")
		}
		for _, u := range workerURLs {
			if !strings.Contains(u, "://") {
				fatal("worker is not a URL (want e.g. http://host:port)", "worker", u)
			}
		}
		// One forwarding slot per worker: the coordinator's "workers"
		// are outbound streams, not simulations.
		workers = len(workerURLs)
		if *batch {
			log.Warn("-batch is ignored under -coordinator (coalescing happens on the workers)")
			*batch = false
		}
	} else if n, err := strconv.Atoi(*workersFlag); err == nil && n > 0 {
		workers = n
	} else {
		fatal("bad -workers (want a positive count, or URLs with -coordinator)", "workers", *workersFlag)
	}

	var store *serve.Store
	if *storeDir != "" {
		var err error
		store, err = serve.OpenStore(*storeDir, int64(*storeCacheMB)<<20, log)
		if err != nil {
			fatal("opening result store", "dir", *storeDir, "err", err)
		}
		log.Info("result store open", "dir", *storeDir, "cache_mb", *storeCacheMB)
	} else {
		log.Warn("no -store directory: results are cached in memory only")
	}

	srv := serve.NewServer(serve.ServerConfig{
		Store:       store,
		Workers:     workers,
		MaxQueue:    *queue,
		JobTimeout:  *jobTimeout,
		Parallelism: *parallel,
		Interval:    *interval,
		Batch:       *batch,
		MaxCoalesce: *coalesce,
		Log:         log,
	})

	switch {
	case *coordinator:
		// Coordinator: ring over the worker fleet, jobs forwarded by
		// shard ownership, results pulled back into the local store.
		members := placement.NewMembership(workerURLs, placement.Config{
			Self:  *self,
			Probe: placement.HTTPProbe(nil),
			Log:   log,
		})
		defer members.Start()()
		srv.SetCluster(members, nil)
		fwd := &cluster.Forwarder{
			Self:    *self,
			Members: members,
			Local:   srv.LocalRunner(),
			OnSpan:  srv.RecordSpan,
			Log:     log,
		}
		if store != nil {
			fwd.Transport = store
		}
		srv.SetRunner(fwd)
		log.Info("coordinating", "workers", workerURLs)
	case *peersFlag != "":
		// Worker in a peer ring: read through (and replicate to) the
		// shard owners.
		if *self == "" {
			fatal("-peers requires -self (this node's advertised URL)")
		}
		members := placement.NewMembership(splitList(*peersFlag), placement.Config{
			Self:  *self,
			Probe: placement.HTTPProbe(nil),
			Log:   log,
		})
		defer members.Start()()
		peer := &serve.PeerStore{Local: store, Self: *self, Members: members, Log: log}
		defer peer.Close()
		srv.SetCluster(members, peer)
		log.Info("joined placement ring", "self", *self, "peers", splitList(*peersFlag))
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		_, stopDebug, err := obs.ServeDebug(*pprofAddr, log)
		if err != nil {
			fatal("pprof listen failed", "addr", *pprofAddr, "err", err)
		}
		defer stopDebug()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Info("udpsimd listening", "addr", *addr, "workers", workers, "queue", *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		fatal("http server", "err", err)
	case sig := <-sigCh:
		log.Info("draining on signal", "signal", sig.String(), "timeout", drainTimeout.String())
	}

	// Drain: stop admission (readyz -> 503), cancel queued jobs, let
	// running jobs finish within the budget, then close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Warn("drain incomplete", "err", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "err", err)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, srv); err != nil {
			log.Error("writing trace", "file", *traceOut, "err", err)
		} else {
			log.Info("trace written", "file", *traceOut, "spans", len(srv.Spans()))
		}
	}
	log.Info("udpsimd stopped")
}

// splitList splits a comma-separated flag value, trimming whitespace
// and dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// writeTrace dumps the session's recorded lifecycle spans as Chrome
// trace-event JSON.
func writeTrace(path string, srv *serve.Server) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeSpans(f, srv.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
