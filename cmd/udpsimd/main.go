// Command udpsimd is the simulation-as-a-service daemon: it accepts
// experiment-descriptor JSON over HTTP, schedules jobs on a bounded
// priority/fair queue, runs them through the memoized experiment
// engine, persists results in a content-addressed on-disk store, and
// streams per-cell progress plus per-interval metrics over SSE.
//
// Examples:
//
//	udpsimd -addr :8091 -store /var/lib/udpsim/results
//	udpsimd -addr 127.0.0.1:8091 -workers 2 -j 4 -queue 128
//
// Endpoints (see EXPERIMENTS.md for the full API reference):
//
//	POST   /v1/jobs              submit an experiment descriptor
//	GET    /v1/jobs/{id}         job status (cells + result keys)
//	GET    /v1/jobs/{id}/events  SSE stream (progress, samples, terminal)
//	GET    /v1/results/{key}     content-addressed result record
//	GET    /healthz /readyz      health; readiness flips 503 on drain
//	GET    /debug/vars           expvar (queue depth, dedup, store hits)
//
// SIGTERM/SIGINT drain gracefully: admission stops, queued jobs are
// canceled, running jobs finish (bounded by -drain-timeout), results
// are persisted, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"udpsim/internal/obs"
	"udpsim/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8091", "HTTP listen address")
		storeDir     = flag.String("store", "", "content-addressed result store directory (empty = in-memory only)")
		workers      = flag.Int("workers", 1, "jobs run concurrently")
		parallel     = flag.Int("j", 0, "per-job grid-cell concurrency (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "max queued jobs before 429")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job runtime cap (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "graceful-shutdown budget for running jobs")
		interval     = flag.Uint64("interval", 10_000, "SSE metrics sampling interval in cycles (0 disables samples)")
		batch        = flag.Bool("batch", false, "lockstep-batch grid cells sharing a workload image and coalesce queued jobs that share one (results are byte-identical)")
		coalesce     = flag.Int("coalesce", 4, "max queued jobs merged into one batched run (with -batch)")
		lru          = flag.Int("lru", serve.DefaultLRUEntries, "in-memory store read cache entries")
		pprofAddr    = flag.String("pprof", "", "serve live pprof+expvar+metrics on this extra address (e.g. :6060)")
		traceOut     = flag.String("trace-out", "", "write the session's job-lifecycle spans as Chrome trace JSON to this file at shutdown (load in Perfetto)")
		verbose      = flag.Bool("v", false, "debug-level logs")
	)
	flag.Parse()

	log := obs.NewLogger(os.Stderr, *verbose)
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	var store *serve.Store
	if *storeDir != "" {
		var err error
		store, err = serve.OpenStore(*storeDir, *lru, log)
		if err != nil {
			fatal("opening result store", "dir", *storeDir, "err", err)
		}
		log.Info("result store open", "dir", *storeDir, "lru_entries", *lru)
	} else {
		log.Warn("no -store directory: results are cached in memory only")
	}

	srv := serve.NewServer(serve.ServerConfig{
		Store:       store,
		Workers:     *workers,
		MaxQueue:    *queue,
		JobTimeout:  *jobTimeout,
		Parallelism: *parallel,
		Interval:    *interval,
		Batch:       *batch,
		MaxCoalesce: *coalesce,
		Log:         log,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		_, stopDebug, err := obs.ServeDebug(*pprofAddr, log)
		if err != nil {
			fatal("pprof listen failed", "addr", *pprofAddr, "err", err)
		}
		defer stopDebug()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Info("udpsimd listening", "addr", *addr, "workers", *workers, "queue", *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		fatal("http server", "err", err)
	case sig := <-sigCh:
		log.Info("draining on signal", "signal", sig.String(), "timeout", drainTimeout.String())
	}

	// Drain: stop admission (readyz -> 503), cancel queued jobs, let
	// running jobs finish within the budget, then close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Warn("drain incomplete", "err", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "err", err)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, srv); err != nil {
			log.Error("writing trace", "file", *traceOut, "err", err)
		} else {
			log.Info("trace written", "file", *traceOut, "spans", len(srv.Spans()))
		}
	}
	log.Info("udpsimd stopped")
}

// writeTrace dumps the session's recorded lifecycle spans as Chrome
// trace-event JSON.
func writeTrace(path string, srv *serve.Server) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeSpans(f, srv.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
