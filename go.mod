module udpsim

go 1.22
