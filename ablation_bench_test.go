// Ablation benchmarks for the design choices DESIGN.md calls out:
// UDP's two off-path triggers, the super-line compression, the
// confidence threshold, the Seniority-FTQ capacity, and the combined
// UDP+UFTQ mechanism. Each reports the IPC delta against the same-run
// UDP default so `go test -bench=Ablation` prints a self-contained
// ablation table.
package udpsim_test

import (
	"fmt"
	"testing"

	"udpsim"
	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

// ablationConfig is a mid-size xgboost-like run where UDP's decisions
// matter most (heavy wrong-path activity).
func ablationConfig(mech udpsim.Mechanism) udpsim.Config {
	p := workload.MustByName("xgboost")
	if testing.Short() {
		p.Funcs = 200
		p.DispatchTargets = 180
	}
	cfg := udpsim.NewConfigFor(p, mech)
	cfg.MaxInstructions = 150_000
	cfg.WarmupInstructions = 400_000
	return cfg
}

func runAblation(b *testing.B, mutate func(*udpsim.Config)) float64 {
	b.Helper()
	cfg := ablationConfig(udpsim.MechUDP)
	if mutate != nil {
		mutate(&cfg)
	}
	var ipc float64
	for i := 0; i < b.N; i++ {
		r, err := sim.RunOne(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ipc = r.IPC
	}
	return ipc
}

func BenchmarkAblationUDPDefault(b *testing.B) {
	ipc := runAblation(b, nil)
	b.ReportMetric(ipc, "IPC")
}

func BenchmarkAblationNoHiddenTrigger(b *testing.B) {
	ipc := runAblation(b, func(c *udpsim.Config) {
		c.UDP.DisableHiddenTrigger = true
	})
	b.ReportMetric(ipc, "IPC")
}

func BenchmarkAblationConfidenceThreshold(b *testing.B) {
	for _, th := range []int{2, 8, 24} {
		th := th
		b.Run(benchName("threshold", th), func(b *testing.B) {
			ipc := runAblation(b, func(c *udpsim.Config) {
				c.UDP.ConfidenceThreshold = th
			})
			b.ReportMetric(ipc, "IPC")
		})
	}
}

func BenchmarkAblationSeniorityCapacity(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		n := n
		b.Run(benchName("entries", n), func(b *testing.B) {
			ipc := runAblation(b, func(c *udpsim.Config) {
				c.UDP.SeniorityEntries = n
			})
			b.ReportMetric(ipc, "IPC")
		})
	}
}

func BenchmarkAblationInfiniteStorage(b *testing.B) {
	cfg := ablationConfig(udpsim.MechUDPInfinite)
	var ipc float64
	for i := 0; i < b.N; i++ {
		r, err := sim.RunOne(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ipc = r.IPC
	}
	b.ReportMetric(ipc, "IPC")
}

func BenchmarkAblationCombinedUDPUFTQ(b *testing.B) {
	cfg := ablationConfig(udpsim.MechUDPUFTQ)
	var ipc float64
	var depth int
	for i := 0; i < b.N; i++ {
		r, err := sim.RunOne(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ipc = r.IPC
		depth = r.FinalFTQDepth
	}
	b.ReportMetric(ipc, "IPC")
	b.ReportMetric(float64(depth), "finalFTQ")
}

func BenchmarkAblationFlushThreshold(b *testing.B) {
	// The paper notes a more conservative flush policy may suit
	// verilator-like workloads; sweep the outcome window (proxy for
	// flush aggressiveness).
	for _, w := range []int{64, 256, 1024} {
		w := w
		b.Run(benchName("window", w), func(b *testing.B) {
			ipc := runAblation(b, func(c *udpsim.Config) {
				c.UDP.OutcomeWindow = w
			})
			b.ReportMetric(ipc, "IPC")
		})
	}
}

func benchName(k string, v int) string { return fmt.Sprintf("%s_%d", k, v) }

// BenchmarkAblationPredecodeBTBFill measures the Boomerang-style BTB
// fill extension alone and composed with UDP.
func BenchmarkAblationPredecodeBTBFill(b *testing.B) {
	for _, spec := range []struct {
		name string
		mech udpsim.Mechanism
		fill bool
	}{
		{"baseline", udpsim.MechBaseline, false},
		{"btbfill", udpsim.MechBaseline, true},
		{"udp_btbfill", udpsim.MechUDP, true},
	} {
		spec := spec
		b.Run(spec.name, func(b *testing.B) {
			cfg := ablationConfig(spec.mech)
			cfg.PredecodeBTBFill = spec.fill
			var ipc float64
			for i := 0; i < b.N; i++ {
				r, err := sim.RunOne(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ipc = r.IPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}
