package udpsim_test

import (
	"fmt"

	"udpsim"
)

// ExampleRun simulates a small workload under baseline FDIP and prints
// whether the run completed. (IPC values depend on the configuration,
// so the example asserts only on determinism-friendly facts.)
func ExampleRun() {
	prof, _ := udpsim.WorkloadProfile("mysql")
	prof.Funcs = 60 // shrink the synthetic image for example speed
	prof.DispatchTargets = 40

	cfg := udpsim.NewConfigFor(prof, udpsim.MechBaseline)
	cfg.MaxInstructions = 50_000
	cfg.WarmupInstructions = 10_000

	res, err := udpsim.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Instructions >= 50_000, res.IPC > 0)
	// Output: true true
}

// ExampleSpeedup compares two mechanisms on the same workload.
func ExampleSpeedup() {
	prof, _ := udpsim.WorkloadProfile("mysql")
	prof.Funcs = 60
	prof.DispatchTargets = 40

	base := udpsim.NewConfigFor(prof, udpsim.MechBaseline)
	base.MaxInstructions = 50_000
	base.WarmupInstructions = 10_000
	perfect := base
	perfect.Mechanism = udpsim.MechPerfectICache

	b, _ := udpsim.Run(base)
	p, _ := udpsim.Run(perfect)
	fmt.Println(udpsim.Speedup(p, b) >= 0)
	// Output: true
}

// ExampleWorkloads lists the paper's applications.
func ExampleWorkloads() {
	fmt.Println(len(udpsim.Workloads()))
	// Output: 10
}
