package udpsim_test

import (
	"testing"

	"udpsim"
)

func quickConfig(m udpsim.Mechanism) udpsim.Config {
	prof, err := udpsim.WorkloadProfile("mysql")
	if err != nil {
		panic(err)
	}
	prof.Funcs = 60
	prof.DispatchTargets = 40
	cfg := udpsim.NewConfigFor(prof, m)
	cfg.MaxInstructions = 60_000
	cfg.WarmupInstructions = 20_000
	return cfg
}

func TestPublicAPIQuickstart(t *testing.T) {
	res, err := udpsim.Run(quickConfig(udpsim.MechBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Instructions < 60_000 {
		t.Errorf("result %+v", res)
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := udpsim.Workloads()
	if len(ws) != 10 {
		t.Fatalf("%d workloads", len(ws))
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// package's list.
	ws[0] = "corrupted"
	if udpsim.Workloads()[0] == "corrupted" {
		t.Error("Workloads returns aliased state")
	}
	for _, name := range udpsim.Workloads() {
		if _, err := udpsim.WorkloadProfile(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := udpsim.WorkloadProfile("unknown"); err == nil {
		t.Error("unknown workload resolved")
	}
}

func TestPublicSimpoints(t *testing.T) {
	results, agg, err := udpsim.RunSimpoints(quickConfig(udpsim.MechBaseline), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || agg.Instructions == 0 {
		t.Errorf("simpoints: %d results, agg %+v", len(results), agg)
	}
}

func TestPublicMachineStepping(t *testing.T) {
	m, err := udpsim.NewMachine(quickConfig(udpsim.MechUDP))
	if err != nil {
		t.Fatal(err)
	}
	m.RunInstructions(10_000)
	if m.Cycle() == 0 {
		t.Error("machine did not advance")
	}
	snap := m.Snapshot()
	if snap.Instructions < 10_000 {
		t.Errorf("snapshot %+v", snap)
	}
}

func TestSpeedupAndGeomean(t *testing.T) {
	a := udpsim.Result{IPC: 1.1}
	b := udpsim.Result{IPC: 1.0}
	if s := udpsim.Speedup(a, b); s < 0.0999 || s > 0.1001 {
		t.Errorf("speedup %v", s)
	}
	if g := udpsim.Geomean([]float64{0.1, 0.1}); g < 0.0999 || g > 0.1001 {
		t.Errorf("geomean %v", g)
	}
}

func TestDefaultExperimentOptions(t *testing.T) {
	o := udpsim.DefaultExperimentOptions()
	if o.Instructions == 0 || o.Warmup == 0 {
		t.Errorf("options %+v", o)
	}
}
