// Package udpsim is the public API of the UDP reproduction: a
// cycle-level CPU frontend simulator with fetch-directed instruction
// prefetching (FDIP) and the two mechanisms from "UDP: Utility-Driven
// Fetch Directed Instruction Prefetching" (ISCA 2024) — UFTQ (dynamic
// fetch-target-queue sizing) and UDP (per-candidate prefetch utility
// learning).
//
// Quick start:
//
//	cfg := udpsim.NewConfig("xgboost", udpsim.MechUDP)
//	cfg.MaxInstructions = 1_000_000
//	res, err := udpsim.Run(cfg)
//	fmt.Printf("IPC %.3f, icache MPKI %.1f\n", res.IPC, res.IcacheMPKI)
//
// The package re-exports the building blocks from internal packages so
// downstream code can assemble custom machines, define new synthetic
// workloads, or plug in new Tuner mechanisms. See the examples/
// directory for runnable programs.
package udpsim

import (
	"fmt"

	"udpsim/internal/experiments"
	"udpsim/internal/sim"
	"udpsim/internal/workload"
)

// Mechanism selects the instruction-prefetch policy under evaluation.
type Mechanism = sim.Mechanism

// The mechanisms evaluated in the paper.
const (
	MechBaseline      = sim.MechBaseline
	MechNoPrefetch    = sim.MechNoPrefetch
	MechPerfectICache = sim.MechPerfectICache
	MechUFTQAUR       = sim.MechUFTQAUR
	MechUFTQATR       = sim.MechUFTQATR
	MechUFTQATRAUR    = sim.MechUFTQATRAUR
	MechUDP           = sim.MechUDP
	MechUDPInfinite   = sim.MechUDPInfinite
	MechEIP           = sim.MechEIP
	// MechUDPUFTQ composes UDP with UFTQ-ATR-AUR (the orthogonal
	// combination the paper suggests as future work).
	MechUDPUFTQ = sim.MechUDPUFTQ
)

// Config is a full simulation configuration (Table II defaults).
type Config = sim.Config

// Result is the measured outcome of a simulation region.
type Result = sim.Result

// Machine is one assembled simulated core; use it directly for
// cycle-by-cycle control (see examples/udpdeepdive).
type Machine = sim.Machine

// Profile parameterizes the synthetic workload generator.
type Profile = workload.Profile

// Workloads returns the names of the ten datacenter applications the
// paper evaluates, in plotting order.
func Workloads() []string {
	out := make([]string, len(workload.Names))
	copy(out, workload.Names)
	return out
}

// WorkloadProfile returns the synthetic profile for one of the paper's
// applications.
func WorkloadProfile(name string) (Profile, error) {
	p, ok := workload.ByName(name)
	if !ok {
		return Profile{}, fmt.Errorf("udpsim: unknown workload %q (have %v)", name, workload.Names)
	}
	return p, nil
}

// NewConfig returns the paper's Table II configuration for a named
// workload under a mechanism. It panics on an unknown workload name;
// use WorkloadProfile + NewConfigFor for error handling.
func NewConfig(workloadName string, m Mechanism) Config {
	return sim.NewConfig(workload.MustByName(workloadName), m)
}

// NewConfigFor returns the Table II configuration for a custom profile.
func NewConfigFor(p Profile, m Mechanism) Config {
	return sim.NewConfig(p, m)
}

// NewMachine builds a machine from a configuration.
func NewMachine(cfg Config) (*Machine, error) {
	return sim.NewMachine(cfg)
}

// Run generates the workload image, simulates one region, and returns
// the aggregate result.
func Run(cfg Config) (Result, error) {
	return sim.RunOne(cfg)
}

// RunSimpoints simulates n independent regions (the paper's simpoint
// methodology) and returns per-region results plus their aggregate.
func RunSimpoints(cfg Config, n int) ([]Result, Result, error) {
	return sim.RunSimpoints(cfg, n)
}

// Speedup returns r's fractional IPC speedup over base.
func Speedup(r, base Result) float64 { return r.Speedup(base) }

// Geomean aggregates fractional speedups geometrically.
func Geomean(speedups []float64) float64 { return sim.Geomean(speedups) }

// ExperimentOptions controls the figure-regeneration harness.
type ExperimentOptions = experiments.Options

// DefaultExperimentOptions returns the evaluation fidelity used by
// cmd/figures.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }
